module Logic = Tmr_logic.Logic
module Srand = Tmr_logic.Srand
module Texttab = Tmr_logic.Texttab
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Netsim = Tmr_netlist.Netsim
module Stats = Tmr_netlist.Stats
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Partition = Tmr_core.Partition
module Tmr = Tmr_core.Tmr
module Impl = Tmr_pnr.Impl
module Pack = Tmr_pnr.Pack
module Route = Tmr_pnr.Route
module Campaign = Tmr_inject.Campaign

let wire_domains (run : Runs.design_run) =
  let impl = run.Runs.impl in
  let dev = impl.Impl.dev in
  let domains = Array.make dev.Device.nwires (-2) in
  Array.iteri
    (fun ni wires ->
      let driver = impl.Impl.pack.Pack.nets.(ni).Pack.driver in
      let d = Netlist.domain impl.Impl.mapped driver in
      Array.iter (fun w -> domains.(w) <- d) wires)
    impl.Impl.route.Route.net_wires;
  domains

let short_experiment (ctx : Context.t) (run : Runs.design_run) ~same_domain ~n =
  let impl = run.Runs.impl in
  let dev = impl.Impl.dev in
  let db = ctx.Context.db in
  let domains = wire_domains run in
  let candidates = ref [] in
  for p = 0 to dev.Device.npips - 1 do
    if dev.Device.pip_bidir.(p) then begin
      let a = domains.(dev.Device.pip_src.(p)) in
      let b = domains.(dev.Device.pip_dst.(p)) in
      if a >= 0 && b >= 0 then begin
        let addr = Bitdb.pip_bit db p in
        if not (Tmr_arch.Bitstream.get impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream addr)
        then
          if (same_domain && a = b) || ((not same_domain) && a <> b) then
            candidates := addr :: !candidates
      end
    end
  done;
  let candidates = Array.of_list !candidates in
  let rng = Srand.create (ctx.Context.seed + 4242) in
  let chosen = Srand.sample rng n (Array.length candidates) in
  let faults = Array.map (fun i -> candidates.(i)) chosen in
  if Array.length faults = 0 then (0, 0)
  else begin
    let c =
      Campaign.run
        ~name:(Partition.name run.Runs.strategy)
        ~impl ~golden:ctx.Context.golden_nl ~stimulus:ctx.Context.stimulus
        ~faults ()
    in
    (c.Campaign.injected, c.Campaign.wrong)
  end

let fig1 ctx run =
  let n = 150 in
  let ia, wa = short_experiment ctx run ~same_domain:true ~n in
  let ib, wb = short_experiment ctx run ~same_domain:false ~n in
  let t =
    Texttab.create
      ~title:
        (Printf.sprintf
           "Fig 1: routing upsets on %s (shorts between routed nets)"
           (Partition.paper_name run.Runs.strategy))
      ~header:[ "Upset"; "Nets shorted"; "Injected"; "Wrong answers"; "[%]" ]
      [ Texttab.Left; Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right ]
  in
  let pct i w = if i = 0 then "-" else Printf.sprintf "%.1f" (100.0 *. float_of_int w /. float_of_int i) in
  Texttab.add_row t
    [ "a"; "same redundant part"; string_of_int ia; string_of_int wa; pct ia wa ];
  Texttab.add_row t
    [ "b"; "two distinct redundant parts"; string_of_int ib; string_of_int wb;
      pct ib wb ];
  Texttab.render t
  ^ "Upset \"a\" connects two signals of one redundant part and is voted\n\
     out; upset \"b\" can corrupt two parts at once and defeat the vote.\n"

(* ------------------------------------------------------------------ *)
(* Fig 2: accumulator with voted vs unvoted TMR registers *)

let build_accumulator ~width =
  let nl = Netlist.create () in
  Netlist.set_comp nl "input";
  let x = Word.input nl "x" ~width in
  (* acc := acc + x; built with a feedback register *)
  let acc_ff =
    Netlist.with_comp nl "acc/reg" (fun () -> Word.reg nl x (* placeholder D *))
  in
  let sum =
    Netlist.with_comp nl "acc/add" (fun () -> Word.add nl acc_ff x)
  in
  Array.iteri (fun i ff -> Netlist.set_fanin nl ff 0 sum.(i)) acc_ff;
  Netlist.set_comp nl "output";
  Word.output nl "y" acc_ff;
  Netlist.set_comp nl "";
  nl

type fig2_outcome = {
  output_errors_after_first : int;
  state_diverged_cycles : int;
  output_errors_after_second : int;
}

let run_fig2_variant nl ~cycles ~width ~seed =
  (* golden: same netlist, no upsets *)
  let inputs =
    let rng = Srand.create seed in
    Array.init cycles (fun _ -> Srand.int rng (1 lsl (width - 2)))
  in
  let golden = Netsim.create nl in
  Netsim.reset golden;
  let sim = Netsim.create nl in
  Netsim.reset sim;
  (* pick one accumulator flip-flop per domain *)
  let ff_of_domain = Array.make 3 (-1) in
  Netlist.iter_cells nl (fun c ->
      match Netlist.kind nl c with
      | Netlist.Ff _ ->
          let d = Netlist.domain nl c in
          if d >= 0 && ff_of_domain.(d) < 0 then ff_of_domain.(d) <- c
      | _ -> ());
  let outcome =
    ref { output_errors_after_first = 0; state_diverged_cycles = 0;
          output_errors_after_second = 0 }
  in
  let first_upset = 6 and second_upset = cycles / 2 in
  for cycle = 0 to cycles - 1 do
    List.iter
      (fun d ->
        let port = Tmr.redundant_port "x" d in
        Netsim.set_input sim port inputs.(cycle);
        Netsim.set_input golden port inputs.(cycle))
      [ 0; 1; 2 ];
    if cycle = first_upset then begin
      let ff = ff_of_domain.(0) in
      Netsim.set_ff sim ff (Logic.logic_not (Netsim.value sim ff))
    end;
    if cycle = second_upset then begin
      let ff = ff_of_domain.(1) in
      Netsim.set_ff sim ff (Logic.logic_not (Netsim.value sim ff))
    end;
    Netsim.eval sim;
    Netsim.eval golden;
    let out_err =
      let a = Netsim.output_bits sim "y" in
      let b = Netsim.output_bits golden "y" in
      not (Array.for_all2 Logic.equal a b)
    in
    let diverged =
      (* does domain 0's state differ from domain 1's? *)
      ff_of_domain.(0) >= 0 && ff_of_domain.(1) >= 0
      && not
           (Logic.equal
              (Netsim.value sim ff_of_domain.(0))
              (Netsim.value sim ff_of_domain.(1)))
    in
    let o = !outcome in
    outcome :=
      {
        output_errors_after_first =
          (o.output_errors_after_first
          + if out_err && cycle >= first_upset && cycle < second_upset then 1 else 0);
        state_diverged_cycles =
          (o.state_diverged_cycles
          + if diverged && cycle >= first_upset && cycle < second_upset then 1 else 0);
        output_errors_after_second =
          (o.output_errors_after_second
          + if out_err && cycle >= second_upset then 1 else 0);
      };
    Netsim.clock sim;
    Netsim.clock golden
  done;
  !outcome

let fig2 (ctx : Context.t) =
  let width = 8 and cycles = 40 in
  let base = build_accumulator ~width in
  let voted = Partition.protect base Partition.Min_partition in
  let unvoted = Partition.protect base Partition.Min_partition_nv in
  let ov = run_fig2_variant voted ~cycles ~width ~seed:(ctx.Context.seed + 9) in
  let ou = run_fig2_variant unvoted ~cycles ~width ~seed:(ctx.Context.seed + 9) in
  let t =
    Texttab.create
      ~title:
        "Fig 2: SEU in an accumulator register (state-machine logic), TMR \
         with voted vs unvoted registers"
      ~header:
        [ "Registers"; "out errs after 1st SEU"; "diverged state cycles";
          "out errs after 2nd SEU (other domain)" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right ]
  in
  Texttab.add_row t
    [ "voted (fig 2)"; string_of_int ov.output_errors_after_first;
      string_of_int ov.state_diverged_cycles;
      string_of_int ov.output_errors_after_second ];
  Texttab.add_row t
    [ "unvoted"; string_of_int ou.output_errors_after_first;
      string_of_int ou.state_diverged_cycles;
      string_of_int ou.output_errors_after_second ];
  Texttab.render t
  ^ "Voted registers re-converge at the next clock edge, so a later upset\n\
     in another domain is still masked; without voters the first upset is\n\
     locked in the loop and the second one defeats the majority.\n"

let fig3 ctx unpartitioned partitioned =
  let n = 150 in
  let iu, wu = short_experiment ctx unpartitioned ~same_domain:false ~n in
  let ip, wp = short_experiment ctx partitioned ~same_domain:false ~n in
  let pct i w =
    if i = 0 then "-"
    else Printf.sprintf "%.1f" (100.0 *. float_of_int w /. float_of_int i)
  in
  let t =
    Texttab.create
      ~title:
        "Fig 3: inter-domain routing upsets (upset \"b\") with and without \
         voter partition barriers"
      ~header:[ "Design"; "Injected"; "Wrong answers"; "[%]" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right ]
  in
  Texttab.add_row t
    [ Partition.paper_name unpartitioned.Runs.strategy; string_of_int iu;
      string_of_int wu; pct iu wu ];
  Texttab.add_row t
    [ Partition.paper_name partitioned.Runs.strategy; string_of_int ip;
      string_of_int wp; pct ip wp ];
  Texttab.render t
  ^ "Partitioning the triplicated logic with voter walls confines the\n\
     corruption of each redundant part, so the same class of upset is\n\
     far less likely to reach the output (the paper's fig. 3).\n"

let fig4 runs =
  let t =
    Texttab.create
      ~title:"Fig 4: structure of the TMR filter schemes"
      ~header:
        [ "Design"; "gates"; "voters"; "voter stages"; "inter-domain nets";
          "LUTs"; "FFs"; "comb depth" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right;
        Texttab.Right; Texttab.Right; Texttab.Right; Texttab.Right ]
  in
  List.iter
    (fun (run : Runs.design_run) ->
      let st = Stats.compute run.Runs.nl in
      let stm = Stats.compute run.Runs.impl.Impl.mapped in
      Texttab.add_row t
        [
          Partition.paper_name run.Runs.strategy;
          string_of_int st.Stats.gates;
          string_of_int st.Stats.voters;
          string_of_int st.Stats.voter_stages;
          string_of_int st.Stats.cross_domain_nets;
          string_of_int stm.Stats.luts;
          string_of_int stm.Stats.ffs;
          string_of_int st.Stats.comb_depth;
        ])
    runs;
  Texttab.render t
