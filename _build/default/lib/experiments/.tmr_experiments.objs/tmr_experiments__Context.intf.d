lib/experiments/context.mli: Tmr_arch Tmr_filter Tmr_inject Tmr_netlist
