lib/experiments/tables.mli: Context Runs
