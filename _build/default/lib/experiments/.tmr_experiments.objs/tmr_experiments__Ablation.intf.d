lib/experiments/ablation.mli: Context Tmr_core
