lib/experiments/tables.ml: Array Context List Option Printf Runs Tmr_arch Tmr_core Tmr_inject Tmr_logic Tmr_netlist Tmr_pnr
