lib/experiments/reports.mli: Context
