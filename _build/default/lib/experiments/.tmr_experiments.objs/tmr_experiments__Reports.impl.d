lib/experiments/reports.ml: Context List Printf Tmr_arch Tmr_logic
