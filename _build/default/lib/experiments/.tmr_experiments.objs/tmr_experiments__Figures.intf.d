lib/experiments/figures.mli: Context Runs
