lib/experiments/runs.mli: Context Tmr_core Tmr_inject Tmr_netlist Tmr_pnr
