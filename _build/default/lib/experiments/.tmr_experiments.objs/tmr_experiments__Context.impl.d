lib/experiments/context.ml: Tmr_arch Tmr_filter Tmr_inject Tmr_netlist
