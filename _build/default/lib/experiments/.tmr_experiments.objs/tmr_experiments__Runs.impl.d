lib/experiments/runs.ml: Context List Option Tmr_core Tmr_filter Tmr_inject Tmr_netlist Tmr_pnr
