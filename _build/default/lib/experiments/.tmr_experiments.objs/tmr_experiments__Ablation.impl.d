lib/experiments/ablation.ml: Context List Printf Runs Tmr_core Tmr_filter Tmr_inject Tmr_logic Tmr_pnr
