(** Technology mapping: cover the gate netlist with 4-input LUTs.

    Greedy single-fanout cone absorption: every gate whose output is read
    exactly once by combinational logic of the same TMR role is folded into
    its reader's LUT while the merged support stays within four inputs.
    Constants are folded into truth tables.

    Voters are kept as dedicated 3-input majority LUTs — they are never
    absorbed and never absorb neighbouring logic — matching the paper's
    "one majority voter can be implemented by one LUT" and keeping the
    voter-barrier structure visible to the fault-classification code. *)

type result = {
  mapped : Tmr_netlist.Netlist.t;  (** LUT/FF/port netlist *)
  cell_map : int array;
      (** old cell id -> new cell id for surviving cells (inputs, outputs,
          flip-flops, cone roots); [-1] for absorbed gates *)
}

val run : Tmr_netlist.Netlist.t -> result
(** Input may contain any cell kind; output contains only [Input], [Output],
    [Const], [Lut] and [Ff] cells.  Ports, names, component labels, domains
    and voter flags are preserved. *)

val check_only_mapped_kinds : Tmr_netlist.Netlist.t -> bool
(** True when the netlist is in post-mapping form. *)
