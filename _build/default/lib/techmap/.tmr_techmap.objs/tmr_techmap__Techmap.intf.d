lib/techmap/techmap.mli: Tmr_netlist
