lib/techmap/techmap.ml: Array Hashtbl List Tmr_logic Tmr_netlist
