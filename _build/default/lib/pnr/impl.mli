(** End-to-end implementation: technology map, pack, place, route, generate
    the bitstream, and keep every artefact the fault-injection campaign
    needs (the golden configuration, the DUT bit list, the physical IO
    map). *)

type t = {
  source : Tmr_netlist.Netlist.t;  (** the netlist as designed (gates) *)
  mapped : Tmr_netlist.Netlist.t;  (** post-techmap LUT netlist *)
  dev : Tmr_arch.Device.t;
  db : Tmr_arch.Bitdb.t;
  pack : Pack.t;
  place : Place.t;
  route : Route.result;
  bitgen : Bitgen.t;
  timing : Timing.report;
  seed : int;
}

val implement :
  ?seed:int ->
  ?moves_per_site:int ->
  ?floorplan:Place.floorplan ->
  ?max_route_iters:int ->
  Tmr_arch.Device.t ->
  Tmr_arch.Bitdb.t ->
  Tmr_netlist.Netlist.t ->
  (t, string) result
(** The input netlist is the gate-level design (pre-techmap). *)

val implement_exn :
  ?seed:int ->
  ?moves_per_site:int ->
  ?floorplan:Place.floorplan ->
  ?max_route_iters:int ->
  Tmr_arch.Device.t ->
  Tmr_arch.Bitdb.t ->
  Tmr_netlist.Netlist.t ->
  t

val input_pad_wire : t -> string -> int -> int
(** [input_pad_wire t port bit] is the PadIn wire driving input [port]
    bit [bit]. *)

val output_pad_wire : t -> string -> int -> int

val used_slices : t -> int
(** Distinct (tile, slice) pairs occupied — Table 2's area column. *)

val used_luts : t -> int
val used_ffs : t -> int
