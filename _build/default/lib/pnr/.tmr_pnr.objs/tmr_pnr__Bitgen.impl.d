lib/pnr/bitgen.ml: Array Hashtbl List Option Pack Place Route Tmr_arch Tmr_logic Tmr_netlist
