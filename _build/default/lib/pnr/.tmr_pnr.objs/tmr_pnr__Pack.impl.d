lib/pnr/pack.ml: Array List Tmr_logic Tmr_netlist Tmr_techmap
