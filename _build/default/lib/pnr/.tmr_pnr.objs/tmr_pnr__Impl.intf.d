lib/pnr/impl.mli: Bitgen Pack Place Route Timing Tmr_arch Tmr_netlist
