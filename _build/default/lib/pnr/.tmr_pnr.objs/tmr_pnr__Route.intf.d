lib/pnr/route.mli: Pack Place Stdlib Tmr_arch
