lib/pnr/impl.ml: Array Bitgen Hashtbl Pack Place Printf Route String Timing Tmr_arch Tmr_netlist Tmr_techmap
