lib/pnr/bitgen.mli: Pack Place Route Tmr_arch Tmr_netlist
