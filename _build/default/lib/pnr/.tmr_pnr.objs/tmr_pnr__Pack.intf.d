lib/pnr/pack.mli: Tmr_netlist
