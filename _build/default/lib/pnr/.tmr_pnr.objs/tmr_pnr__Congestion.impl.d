lib/pnr/congestion.ml: Array Buffer Char Pack Printf Route Tmr_arch Tmr_netlist
