lib/pnr/place.ml: Array Hashtbl List Option Pack Printf Tmr_arch Tmr_logic Tmr_netlist
