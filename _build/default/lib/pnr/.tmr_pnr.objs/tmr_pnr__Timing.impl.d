lib/pnr/timing.ml: Array Hashtbl Pack Place Route Tmr_arch Tmr_netlist
