lib/pnr/route.ml: Array Hashtbl List Pack Place Printf String Sys Tmr_arch
