lib/pnr/congestion.mli: Pack Route Tmr_arch Tmr_netlist
