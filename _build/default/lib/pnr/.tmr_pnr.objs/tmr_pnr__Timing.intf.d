lib/pnr/timing.mli: Pack Place Route Tmr_arch Tmr_netlist
