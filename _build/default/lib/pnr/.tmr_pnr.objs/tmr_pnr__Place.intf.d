lib/pnr/place.mli: Pack Tmr_arch Tmr_netlist
