(** Placement: bind packed sites to device bels and port cells to IO pads.

    Random initial placement refined by simulated annealing on the
    half-perimeter wirelength of every net.  The default mode is
    domain-agnostic, matching the paper's setup (no dedicated floorplanning
    of the TMR domains); [`Domains] constrains each TMR domain to its own
    vertical region of the array, implementing the paper's future-work
    floorplanning experiment. *)

type floorplan =
  [ `Free  (** any site anywhere — the paper's configuration *)
  | `Domains  (** domain d confined to its third of the columns *) ]

type t = {
  site_bel : int array;  (** site index -> device bel id *)
  pad_of_cell : int array;  (** Input/Output cell -> pad id, -1 otherwise *)
  cost : float;  (** final wirelength cost *)
}

val run :
  ?seed:int ->
  ?moves_per_site:int ->
  ?floorplan:floorplan ->
  Tmr_arch.Device.t ->
  Pack.t ->
  Tmr_netlist.Netlist.t ->
  t
(** Raises [Failure] when the design does not fit (more sites than bels or
    more port bits than pads). *)
