module Device = Tmr_arch.Device

type result = {
  net_pips : int array array;
  net_wires : int array array;
  sink_stats : (int * int * int) array array;
  iterations : int;
}

(* Min-heap of (cost, wire) on float keys. *)
module Heap = struct
  type t = {
    mutable keys : float array;
    mutable data : int array;
    mutable n : int;
  }

  let create () = { keys = Array.make 1024 0.0; data = Array.make 1024 0; n = 0 }

  let clear h = h.n <- 0

  let push h k v =
    if h.n >= Array.length h.keys then begin
      h.keys <- Array.append h.keys (Array.make (Array.length h.keys) 0.0);
      h.data <- Array.append h.data (Array.make (Array.length h.data) 0)
    end;
    let i = ref h.n in
    h.keys.(!i) <- k;
    h.data.(!i) <- v;
    h.n <- h.n + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if h.keys.(parent) > h.keys.(!i) then begin
        let tk = h.keys.(parent) and td = h.data.(parent) in
        h.keys.(parent) <- h.keys.(!i);
        h.data.(parent) <- h.data.(!i);
        h.keys.(!i) <- tk;
        h.data.(!i) <- td;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let k = h.keys.(0) and v = h.data.(0) in
      h.n <- h.n - 1;
      h.keys.(0) <- h.keys.(h.n);
      h.data.(0) <- h.data.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
        let smallest = ref !i in
        if left < h.n && h.keys.(left) < h.keys.(!smallest) then smallest := left;
        if right < h.n && h.keys.(right) < h.keys.(!smallest) then
          smallest := right;
        if !smallest <> !i then begin
          let tk = h.keys.(!smallest) and td = h.data.(!smallest) in
          h.keys.(!smallest) <- h.keys.(!i);
          h.data.(!smallest) <- h.data.(!i);
          h.keys.(!i) <- tk;
          h.data.(!i) <- td;
          i := !smallest
        end
        else continue := false
      done;
      Some (k, v)
    end
end

let driver_wire dev pack place ni =
  let drv = pack.Pack.nets.(ni).Pack.driver in
  let s = pack.Pack.site_of_cell.(drv) in
  if s >= 0 then dev.Device.bel_out.(place.Place.site_bel.(s))
  else begin
    let pad = place.Place.pad_of_cell.(drv) in
    assert (pad >= 0);
    dev.Device.pad_wire.(pad)
  end

let sink_wire dev _pack place sink =
  match sink with
  | Pack.Site_pin (s, j) -> dev.Device.bel_in.(place.Place.site_bel.(s)).(j)
  | Pack.Out_pad c -> dev.Device.pad_wire.(place.Place.pad_of_cell.(c))

let base_cost dev w =
  match dev.Device.wkind.(w) with
  | Device.HSingle | Device.VSingle -> 1.0
  | Device.HDouble | Device.VDouble -> 1.4
  | Device.HLong | Device.VLong -> 4.0
  | Device.BelIn | Device.BelOut | Device.PadIn | Device.PadOut -> 0.6

let run ?(max_iters = 60) dev pack place =
  let nwires = dev.Device.nwires in
  let nnets = Array.length pack.Pack.nets in
  let occ = Array.make nwires 0 in
  let hist = Array.make nwires 0.0 in
  let cost = Array.make nwires infinity in
  let prev = Array.make nwires (-1) in
  let stamp = Array.make nwires 0 in
  let tree_stamp = Array.make nwires 0 in
  let epoch = ref 0 in
  let tree_epoch = ref 0 in
  let heap = Heap.create () in
  let net_wires = Array.make nnets [||] in
  let net_pips = Array.make nnets [||] in
  let srcs = Array.init nnets (fun ni -> driver_wire dev pack place ni) in
  let sinks =
    Array.init nnets (fun ni ->
        Array.of_list
          (List.map (sink_wire dev pack place) pack.Pack.nets.(ni).Pack.sinks))
  in
  (* Net bounding boxes (tile coordinates) with a per-iteration margin. *)
  let bbox = Array.make nnets (0, 0, 0, 0) in
  let compute_bbox ni margin =
    let rmin = ref max_int and rmax = ref min_int in
    let cmin = ref max_int and cmax = ref min_int in
    let touch w =
      let r = dev.Device.wrow.(w) and c = dev.Device.wcol.(w) in
      if r < !rmin then rmin := r;
      if r > !rmax then rmax := r;
      if c < !cmin then cmin := c;
      if c > !cmax then cmax := c
    in
    touch srcs.(ni);
    Array.iter touch sinks.(ni);
    bbox.(ni) <- (!rmin - margin, !rmax + margin, !cmin - margin, !cmax + margin)
  in
  let in_bbox ni w =
    let rmin, rmax, cmin, cmax = bbox.(ni) in
    let r = dev.Device.wrow.(w) and c = dev.Device.wcol.(w) in
    (* long lines span the whole row/column; never exclude them *)
    match dev.Device.wkind.(w) with
    | Device.HLong | Device.VLong -> true
    | _ -> r >= rmin && r <= rmax && c >= cmin && c <= cmax
  in
  let pres_fac = ref 0.6 in
  let wire_cost w =
    let over = float_of_int occ.(w) in
    (base_cost dev w *. (1.0 +. (over *. !pres_fac))) +. hist.(w)
  in
  let route_net ni =
    let src = srcs.(ni) in
    incr tree_epoch;
    tree_stamp.(src) <- !tree_epoch;
    let tree = ref [ src ] in
    let tree_pips = ref [] in
    let failed = ref None in
    Array.iter
      (fun sk ->
        if !failed = None && tree_stamp.(sk) <> !tree_epoch then begin
          incr epoch;
          Heap.clear heap;
          (* seed with current tree *)
          List.iter
            (fun w ->
              stamp.(w) <- !epoch;
              cost.(w) <- 0.0;
              prev.(w) <- -1;
              let dist =
                abs (dev.Device.wrow.(w) - dev.Device.wrow.(sk))
                + abs (dev.Device.wcol.(w) - dev.Device.wcol.(sk))
              in
              Heap.push heap (0.9 *. float_of_int dist) w)
            !tree;
          let found = ref false in
          let continue = ref true in
          while !continue do
            match Heap.pop heap with
            | None -> continue := false
            | Some (_, w) ->
                if w = sk then begin
                  found := true;
                  continue := false
                end
                else
                  Array.iter
                    (fun pipid ->
                      let d = Device.pip_other dev pipid w in
                      if in_bbox ni d then begin
                        let c = cost.(w) +. wire_cost d in
                        if stamp.(d) <> !epoch || c < cost.(d) then begin
                          stamp.(d) <- !epoch;
                          cost.(d) <- c;
                          prev.(d) <- pipid;
                          let dist =
                            abs (dev.Device.wrow.(d) - dev.Device.wrow.(sk))
                            + abs (dev.Device.wcol.(d) - dev.Device.wcol.(sk))
                          in
                          Heap.push heap (c +. (0.9 *. float_of_int dist)) d
                        end
                      end)
                    dev.Device.wire_out.(w)
          done;
          if not !found then failed := Some sk
          else begin
            (* backtrack: add path wires and pips to tree *)
            let rec back w =
              if tree_stamp.(w) <> !tree_epoch then begin
                tree_stamp.(w) <- !tree_epoch;
                tree := w :: !tree;
                let pipid = prev.(w) in
                if pipid >= 0 then begin
                  tree_pips := pipid :: !tree_pips;
                  back (Device.pip_other dev pipid w)
                end
              end
            in
            back sk
          end
        end)
      sinks.(ni);
    match !failed with
    | Some sk -> Error sk
    | None ->
        net_wires.(ni) <- Array.of_list !tree;
        net_pips.(ni) <- Array.of_list !tree_pips;
        Array.iter (fun w -> occ.(w) <- occ.(w) + 1) net_wires.(ni);
        Ok ()
  in
  let rip_up ni =
    Array.iter (fun w -> occ.(w) <- occ.(w) - 1) net_wires.(ni);
    net_wires.(ni) <- [||];
    net_pips.(ni) <- [||]
  in
  let order = Array.init nnets (fun i -> i) in
  (* route longest-span nets first *)
  Array.sort
    (fun a b ->
      let span ni =
        let rmin, rmax, cmin, cmax = bbox.(ni) in
        rmax - rmin + (cmax - cmin)
      in
      compare (span b) (span a))
    order;
  let result = ref None in
  let iter = ref 0 in
  (* occupancy is counted per wire; a source wire occupied by its own single
     net is fine, so overuse means occ > 1 *)
  let overused w = occ.(w) > 1 in
  while !result = None && !iter < max_iters do
    let margin = 3 + (2 * !iter) in
    Array.iter (fun ni -> compute_bbox ni margin) order;
    let route_error = ref None in
    Array.iter
      (fun ni ->
        if !route_error = None then begin
          (* PathFinder renegotiates every net each iteration: a net that is
             not itself overused may be squatting on the only access wires
             of a congested sink, and must be given the chance to move. *)
          let needs = true in
          if needs then begin
            if Array.length net_wires.(ni) > 0 then rip_up ni;
            (* exclude own occupancy while measuring congestion: done by
               rip-up above *)
            match route_net ni with
            | Ok () -> ()
            | Error sk ->
                route_error :=
                  Some
                    (Printf.sprintf "net %d: no path to sink %s" ni
                       (Device.describe_wire dev sk))
          end
        end)
      order;
    (match !route_error with
    | Some msg when !iter >= max_iters - 1 -> result := Some (Error msg)
    | Some _ -> () (* enlarge bbox next iteration and retry *)
    | None ->
        let over = ref 0 in
        for w = 0 to nwires - 1 do
          if overused w then begin
            incr over;
            hist.(w) <- hist.(w) +. (0.5 *. float_of_int (occ.(w) - 1))
          end
        done;
        if !over = 0 then begin
          (* success: compute per-sink stats *)
          let sink_stats =
            Array.init nnets (fun ni ->
                (* walk the tree from the source *)
                let depth = Hashtbl.create 16 in
                let spansum = Hashtbl.create 16 in
                Hashtbl.replace depth srcs.(ni) 0;
                Hashtbl.replace spansum srcs.(ni) 0;
                (* iterate pips until fixpoint (tree, so one pass in order
                   works if sorted; do simple repeated passes) *)
                let pips = net_pips.(ni) in
                let remaining = ref (Array.to_list pips) in
                let progress = ref true in
                (* tree edges; bidirectional pips may have been traversed
                   either way, so settle whichever endpoint is known *)
                while !remaining <> [] && !progress do
                  progress := false;
                  remaining :=
                    List.filter
                      (fun pipid ->
                        let s = dev.Device.pip_src.(pipid) in
                        let d = dev.Device.pip_dst.(pipid) in
                        let settle from into =
                          let df = Hashtbl.find depth from in
                          Hashtbl.replace depth into (df + 1);
                          Hashtbl.replace spansum into
                            (Hashtbl.find spansum from + Device.wire_span dev into);
                          progress := true;
                          false
                        in
                        match Hashtbl.mem depth s, Hashtbl.mem depth d with
                        | true, false -> settle s d
                        | false, true when dev.Device.pip_bidir.(pipid) ->
                            settle d s
                        | true, true -> (progress := !progress; false)
                        | _ -> true)
                      !remaining
                done;
                Array.map
                  (fun sk ->
                    match Hashtbl.find_opt depth sk with
                    | Some dp -> (sk, dp, Hashtbl.find spansum sk)
                    | None -> (sk, 0, 0))
                  sinks.(ni))
          in
          result :=
            Some
              (Ok
                 {
                   net_pips;
                   net_wires;
                   sink_stats;
                   iterations = !iter + 1;
                 })
        end
        else begin
          if Sys.getenv_opt "TMR_ROUTE_DEBUG" <> None then
            Printf.eprintf "DEBUG iter=%d over=%d pres=%.3g\n%!" !iter !over
              !pres_fac;
          pres_fac := !pres_fac *. 1.7;
          if !iter = max_iters - 1 then begin
            let examples = ref [] in
            for w = nwires - 1 downto 0 do
              if overused w && List.length !examples < 4 then
                examples :=
                  Printf.sprintf "%s(occ=%d)" (Device.describe_wire dev w) occ.(w)
                  :: !examples
            done;
            if Sys.getenv_opt "TMR_ROUTE_DEBUG" <> None then
              for w = 0 to nwires - 1 do
                if overused w then
                  Array.iteri
                    (fun ni wires ->
                      if Array.exists (fun x -> x = w) wires then begin
                        Printf.eprintf "DEBUG overused %s used by net %d (src %s)\n%!"
                          (Device.describe_wire dev w) ni
                          (Device.describe_wire dev srcs.(ni));
                        Array.iter
                          (fun tw ->
                            Printf.eprintf "   tree: %s occ=%d\n%!"
                              (Device.describe_wire dev tw) occ.(tw))
                          wires;
                        Array.iter
                          (fun sk ->
                            Printf.eprintf "   sink: %s\n%!"
                              (Device.describe_wire dev sk))
                          sinks.(ni)
                      end)
                    net_wires
              done;
            result :=
              Some
                (Error
                   (Printf.sprintf
                      "unresolved congestion on %d wires after %d iterations: %s"
                      !over max_iters
                      (String.concat ", " !examples)))
          end
        end);
    incr iter
  done;
  match !result with
  | Some r -> r
  | None -> Error "router did not converge"
