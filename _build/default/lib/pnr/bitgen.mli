(** Bitstream generation and DUT-bit identification.

    Produces the golden configuration image and the list of
    configuration-memory bits "related to the DUT" — used bel bits, used
    pad bits, and every routing PIP incident to a wire of a routed net.
    This list is what the paper's Fault List Manager injects from. *)

type t = {
  bitstream : Tmr_arch.Bitstream.t;
  dut_bits : int array;  (** ascending, unique *)
  used_wires : bool array;  (** wire id -> part of a routed net *)
  used_bels : bool array;
  used_pads : bool array;
}

val run :
  Tmr_arch.Device.t ->
  Tmr_arch.Bitdb.t ->
  Pack.t ->
  Place.t ->
  Route.result ->
  Tmr_netlist.Netlist.t ->
  t

val dut_bits_by_class :
  Tmr_arch.Bitdb.t -> t -> (Tmr_arch.Bitdb.bit_class * int) list
(** Composition of the DUT bit list — Table 2's #routing / #LUT / #CLB-FF
    columns. *)
