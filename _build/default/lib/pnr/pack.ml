module Logic = Tmr_logic.Logic
module Netlist = Tmr_netlist.Netlist

type site = {
  lut : int option;
  ff : int option;
  pins : int array;
  table : int;
  registered : bool;
  out_cell : int;
}

type sink =
  | Site_pin of int * int
  | Out_pad of int

type net = {
  driver : int;
  sinks : sink list;
}

type t = {
  sites : site array;
  site_of_cell : int array;
  nets : net array;
  net_of_cell : int array;
  live : bool array;
  live_inputs : int array;
  live_outputs : int array;
}

(* output = pin 0: table bit at index idx is idx land 1 *)
let identity_table =
  let v = ref 0 in
  for idx = 0 to 15 do
    if idx land 1 = 1 then v := !v lor (1 lsl idx)
  done;
  !v

let expand_table ~arity table =
  let mask = (1 lsl arity) - 1 in
  let v = ref 0 in
  for idx = 0 to 15 do
    if (table lsr (idx land mask)) land 1 = 1 then v := !v lor (1 lsl idx)
  done;
  !v

let compute_live nl =
  let n = Netlist.num_cells nl in
  let live = Array.make n false in
  let rec mark c =
    if not live.(c) then begin
      live.(c) <- true;
      Array.iter mark (Netlist.fanins nl c)
    end
  in
  List.iter
    (fun (_, bits) -> Array.iter mark bits)
    (Netlist.output_ports nl);
  (* input ports always exist physically, even if logically unused *)
  List.iter
    (fun (_, bits) -> Array.iter (fun c -> live.(c) <- true) bits)
    (Netlist.input_ports nl);
  live

let run nl =
  if not (Tmr_techmap.Techmap.check_only_mapped_kinds nl) then
    invalid_arg "Pack.run: netlist is not technology-mapped";
  let n = Netlist.num_cells nl in
  let live = compute_live nl in
  let fanouts = Netlist.compute_fanouts nl in
  let live_readers c = List.filter (fun r -> live.(r)) fanouts.(c) in
  (* Pair each flip-flop with its driver LUT when the LUT feeds only it. *)
  let paired_lut_of_ff = Array.make n (-1) in
  let absorbed = Array.make n false in
  Netlist.iter_cells nl (fun c ->
      if live.(c) then
        match Netlist.kind nl c with
        | Netlist.Ff _ -> (
            let d = (Netlist.fanins nl c).(0) in
            match Netlist.kind nl d with
            | Netlist.Lut _ when live.(d) && live_readers d = [ c ] ->
                paired_lut_of_ff.(c) <- d;
                absorbed.(d) <- true
            | _ -> ())
        | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Lut _
        | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2
        | Netlist.Mux2 | Netlist.Maj3 ->
            ());
  let sites = ref [] in
  let nsites = ref 0 in
  let site_of_cell = Array.make n (-1) in
  let add_site s =
    sites := s :: !sites;
    (match s.lut with Some c -> site_of_cell.(c) <- !nsites | None -> ());
    (match s.ff with Some c -> site_of_cell.(c) <- !nsites | None -> ());
    incr nsites
  in
  Netlist.iter_cells nl (fun c ->
      if live.(c) && not absorbed.(c) then
        match Netlist.kind nl c with
        | Netlist.Lut { arity; table } ->
            let fanins = Netlist.fanins nl c in
            let pins = Array.make 4 (-1) in
            Array.iteri (fun j src -> pins.(j) <- src) fanins;
            add_site
              {
                lut = Some c;
                ff = None;
                pins;
                table = expand_table ~arity table;
                registered = false;
                out_cell = c;
              }
        | Netlist.Ff _ ->
            let d = (Netlist.fanins nl c).(0) in
            if paired_lut_of_ff.(c) >= 0 then begin
              let lut_cell = paired_lut_of_ff.(c) in
              match Netlist.kind nl lut_cell with
              | Netlist.Lut { arity; table } ->
                  let fanins = Netlist.fanins nl lut_cell in
                  let pins = Array.make 4 (-1) in
                  Array.iteri (fun j src -> pins.(j) <- src) fanins;
                  add_site
                    {
                      lut = Some lut_cell;
                      ff = Some c;
                      pins;
                      table = expand_table ~arity table;
                      registered = true;
                      out_cell = c;
                    }
              | _ -> assert false
            end
            else begin
              let pins = Array.make 4 (-1) in
              pins.(0) <- d;
              add_site
                {
                  lut = None;
                  ff = Some c;
                  pins;
                  table = identity_table;
                  registered = true;
                  out_cell = c;
                }
            end
        | Netlist.Const v ->
            add_site
              {
                lut = Some c;
                ff = None;
                pins = Array.make 4 (-1);
                table = (match v with
                         | Logic.One -> 0xffff
                         | Logic.Zero | Logic.X -> 0x0000);
                registered = false;
                out_cell = c;
              }
        | Netlist.Input | Netlist.Output -> ()
        | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2
        | Netlist.Mux2 | Netlist.Maj3 ->
            assert false);
  let sites = Array.of_list (List.rev !sites) in
  (* Nets: one per live driver cell with at least one live reader that needs
     routing.  The internal LUT->FF connection of a paired site is not a
     net. *)
  let nets = ref [] in
  let net_of_cell = Array.make n (-1) in
  let nnets = ref 0 in
  let sink_list_of_driver drv =
    let for_reader r =
      match Netlist.kind nl r with
      | Netlist.Output -> [ Out_pad r ]
      | Netlist.Lut _ | Netlist.Ff _ | Netlist.Const _ ->
          let s = site_of_cell.(r) in
          if s < 0 then []
          else begin
            (* pins of site s reading drv (possibly several) *)
            let site = sites.(s) in
            let hits = ref [] in
            Array.iteri
              (fun j p -> if p = drv then hits := Site_pin (s, j) :: !hits)
              site.pins;
            !hits
          end
      | Netlist.Input | Netlist.Not | Netlist.And2 | Netlist.Or2
      | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3 ->
          []
    in
    List.concat_map for_reader (List.sort_uniq compare (live_readers drv))
  in
  let add_net drv =
    let sinks = sink_list_of_driver drv in
    if sinks <> [] then begin
      nets := { driver = drv; sinks } :: !nets;
      net_of_cell.(drv) <- !nnets;
      incr nnets
    end
  in
  Netlist.iter_cells nl (fun c ->
      if live.(c) then
        match Netlist.kind nl c with
        | Netlist.Input -> add_net c
        | Netlist.Lut _ | Netlist.Ff _ | Netlist.Const _ ->
            if site_of_cell.(c) >= 0 && sites.(site_of_cell.(c)).out_cell = c
            then add_net c
        | Netlist.Output | Netlist.Not | Netlist.And2 | Netlist.Or2
        | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3 ->
            ());
  let live_inputs =
    List.concat_map
      (fun (_, bits) -> Array.to_list bits)
      (Netlist.input_ports nl)
    |> Array.of_list
  in
  let live_outputs =
    List.concat_map
      (fun (_, bits) -> Array.to_list bits)
      (Netlist.output_ports nl)
    |> Array.of_list
  in
  {
    sites;
    site_of_cell;
    nets = Array.of_list (List.rev !nets);
    net_of_cell;
    live;
    live_inputs;
    live_outputs;
  }
