(** Negotiated-congestion (PathFinder) routing over the device graph.

    Each net is routed as a tree from its driver wire (bel output pin or
    input pad) to every sink (bel input pins, output pads) with A*-guided
    maze expansion.  Wires have capacity one; congestion is resolved by
    iterating with growing present-sharing and history penalties. *)

type result = {
  net_pips : int array array;  (** net index -> pips of its routing tree *)
  net_wires : int array array;  (** net index -> wires (driver wire first) *)
  sink_stats : (int * int * int) array array;
      (** net index -> per sink (sink wire, pips on path, wire span sum) *)
  iterations : int;
}

val driver_wire : Tmr_arch.Device.t -> Pack.t -> Place.t -> int -> int
(** Physical wire driving a net (by net index). *)

val sink_wire : Tmr_arch.Device.t -> Pack.t -> Place.t -> Pack.sink -> int

val run :
  ?max_iters:int ->
  Tmr_arch.Device.t ->
  Pack.t ->
  Place.t ->
  (result, string) Stdlib.result
