module Netlist = Tmr_netlist.Netlist
module Device = Tmr_arch.Device
module Arch = Tmr_arch.Arch
module Srand = Tmr_logic.Srand

type floorplan =
  [ `Free
  | `Domains ]

type t = {
  site_bel : int array;
  pad_of_cell : int array;
  cost : float;
}

(* The annealer works on "movables": sites and port cells.  Positions are
   tile coordinates (bels) or pad anchors. *)

let domain_of_site nl pack s =
  let site = pack.Pack.sites.(s) in
  let dom c = Netlist.domain nl c in
  match site.Pack.lut, site.Pack.ff with
  | Some c, _ -> dom c
  | None, Some c -> dom c
  | None, None -> -1

let region_of_domain (dev : Device.t) d =
  let cols = dev.Device.params.Arch.cols in
  if d < 0 then (0, cols - 1)
  else
    let third = cols / 3 in
    let lo = d * third in
    let hi = if d = 2 then cols - 1 else lo + third - 1 in
    (lo, hi)

let run ?(seed = 1) ?(moves_per_site = 128) ?(floorplan = `Free) dev pack nl =
  let rng = Srand.create (seed * 7919 + 13) in
  let nsites = Array.length pack.Pack.sites in
  let nbels = dev.Device.nbels in
  if nsites > nbels then
    failwith
      (Printf.sprintf "Place: design needs %d bels, device has %d" nsites nbels);
  let in_pads = Device.input_pads dev in
  let out_pads = Device.output_pads dev in
  let n_inputs = Array.length pack.Pack.live_inputs in
  let n_outputs = Array.length pack.Pack.live_outputs in
  if n_inputs > Array.length in_pads then
    failwith (Printf.sprintf "Place: %d input bits but %d input pads" n_inputs
                (Array.length in_pads));
  if n_outputs > Array.length out_pads then
    failwith (Printf.sprintf "Place: %d output bits but %d output pads" n_outputs
                (Array.length out_pads));
  (* --- initial placement --- *)
  let site_bel = Array.make nsites (-1) in
  let bel_site = Array.make nbels (-1) in
  (match floorplan with
  | `Free ->
      (* Scanline-with-stride initial placement: consecutive sites (which
         the netlist builders create structurally close together) land in
         neighbouring bels, spread evenly over the array. *)
      for s = 0 to nsites - 1 do
        let b = s * nbels / nsites in
        site_bel.(s) <- b;
        bel_site.(b) <- s
      done
  | `Domains ->
      (* bucket bels by column region, fill each domain from its bucket *)
      let buckets = Array.make 3 [] in
      let free_bucket = ref [] in
      for b = nbels - 1 downto 0 do
        let c = dev.Device.bel_col.(b) in
        let assigned = ref false in
        for d = 0 to 2 do
          let lo, hi = region_of_domain dev d in
          if (not !assigned) && c >= lo && c <= hi then begin
            buckets.(d) <- b :: buckets.(d);
            assigned := true
          end
        done;
        if not !assigned then free_bucket := b :: !free_bucket
      done;
      let buckets = Array.map Array.of_list buckets in
      Array.iter (Srand.shuffle rng) buckets;
      let cursor = Array.make 3 0 in
      let free = Array.of_list !free_bucket in
      let free_cursor = ref 0 in
      for s = 0 to nsites - 1 do
        let d = domain_of_site nl pack s in
        let b =
          if d >= 0 && cursor.(d) < Array.length buckets.(d) then begin
            let b = buckets.(d).(cursor.(d)) in
            cursor.(d) <- cursor.(d) + 1;
            b
          end
          else begin
            (* overflow or domainless: any free bel *)
            let rec next () =
              if !free_cursor < Array.length free then begin
                let b = free.(!free_cursor) in
                incr free_cursor;
                if bel_site.(b) < 0 then b else next ()
              end
              else begin
                (* fall back to scanning buckets for leftovers *)
                let found = ref (-1) in
                for b = 0 to nbels - 1 do
                  if !found < 0 && bel_site.(b) < 0 then found := b
                done;
                !found
              end
            in
            next ()
          end
        in
        site_bel.(s) <- b;
        bel_site.(b) <- s
      done);
  (* pads *)
  let n = Netlist.num_cells nl in
  let pad_of_cell = Array.make n (-1) in
  let pad_cell = Array.make dev.Device.npads (-1) in
  let assign_pads cells pads =
    let order = Array.copy pads in
    Srand.shuffle rng order;
    Array.iteri
      (fun i c ->
        pad_of_cell.(c) <- order.(i);
        pad_cell.(order.(i)) <- c)
      cells
  in
  assign_pads pack.Pack.live_inputs in_pads;
  assign_pads pack.Pack.live_outputs out_pads;
  (* --- cost model: HPWL over nets --- *)
  let pos_of_cell c =
    let s = pack.Pack.site_of_cell.(c) in
    if s >= 0 then
      let b = site_bel.(s) in
      (dev.Device.bel_row.(b), dev.Device.bel_col.(b))
    else begin
      let pad = pad_of_cell.(c) in
      assert (pad >= 0);
      let w = dev.Device.pad_wire.(pad) in
      (dev.Device.wrow.(w), dev.Device.wcol.(w))
    end
  in
  let nnets = Array.length pack.Pack.nets in
  let net_cells =
    Array.map
      (fun net ->
        let cells = ref [ net.Pack.driver ] in
        List.iter
          (fun sink ->
            match sink with
            | Pack.Site_pin (s, _) ->
                cells := pack.Pack.sites.(s).Pack.out_cell :: !cells
            | Pack.Out_pad c -> cells := c :: !cells)
          net.Pack.sinks;
        Array.of_list (List.sort_uniq compare !cells))
      pack.Pack.nets
  in
  let hpwl ni =
    let cells = net_cells.(ni) in
    let rmin = ref max_int and rmax = ref min_int in
    let cmin = ref max_int and cmax = ref min_int in
    Array.iter
      (fun c ->
        let r, cc = pos_of_cell c in
        if r < !rmin then rmin := r;
        if r > !rmax then rmax := r;
        if cc < !cmin then cmin := cc;
        if cc > !cmax then cmax := cc)
      cells;
    float_of_int (!rmax - !rmin + (!cmax - !cmin))
  in
  (* nets touching each movable cell *)
  let nets_of_cell = Hashtbl.create (4 * nnets) in
  Array.iteri
    (fun ni cells ->
      Array.iter
        (fun c ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt nets_of_cell c) in
          Hashtbl.replace nets_of_cell c (ni :: cur))
        cells)
    net_cells;
  let nets_of_site s =
    let site = pack.Pack.sites.(s) in
    let own = Option.value ~default:[] (Hashtbl.find_opt nets_of_cell site.Pack.out_cell) in
    (* pins: nets where this site is a sink *)
    Array.fold_left
      (fun acc p ->
        if p >= 0 then
          match pack.Pack.net_of_cell.(p) with
          | -1 -> acc
          | ni -> ni :: acc
        else acc)
      own site.Pack.pins
    |> List.sort_uniq compare
  in
  let site_nets = Array.init nsites nets_of_site in
  let net_cost = Array.init nnets hpwl in
  let total = ref (Array.fold_left ( +. ) 0.0 net_cost) in
  let recompute nets_list =
    List.fold_left
      (fun delta ni ->
        let fresh = hpwl ni in
        let d = fresh -. net_cost.(ni) in
        net_cost.(ni) <- fresh;
        delta +. d)
      0.0 nets_list
  in
  let restore nets_list saved =
    List.iter2 (fun ni c -> net_cost.(ni) <- c) nets_list saved
  in
  let allowed_col s col =
    match floorplan with
    | `Free -> true
    | `Domains ->
        let lo, hi = region_of_domain dev (domain_of_site nl pack s) in
        col >= lo && col <= hi
  in
  (* --- annealing --- *)
  let nmoves = max 2000 (moves_per_site * max nsites 1) in
  let temp0 = 4.0 +. (0.02 *. float_of_int nsites) in
  let temp_ref = ref 1.0 in
  let rows = dev.Device.params.Arch.rows in
  let cols = dev.Device.params.Arch.cols in
  let bpt = Arch.bels_per_tile dev.Device.params in
  let radius_ref = ref (max rows cols) in
  (* Range-limited move target: a random bel within the current radius of
     the site's tile. *)
  let candidate_bel s =
    let b = site_bel.(s) in
    let r0 = dev.Device.bel_row.(b) and c0 = dev.Device.bel_col.(b) in
    let rad = !radius_ref in
    let clamp v lo hi = max lo (min hi v) in
    let r = clamp (r0 - rad + Srand.int rng ((2 * rad) + 1)) 0 (rows - 1) in
    let c = clamp (c0 - rad + Srand.int rng ((2 * rad) + 1)) 0 (cols - 1) in
    Device.bel_at dev ~row:r ~col:c ~slot:(Srand.int rng bpt)
  in
  let try_site_move () =
    if nsites = 0 then ()
    else begin
      let s = Srand.int rng nsites in
      let b_new = candidate_bel s in
      let b_old = site_bel.(s) in
      if b_new <> b_old && allowed_col s dev.Device.bel_col.(b_new) then begin
        let s2 = bel_site.(b_new) in
        if s2 >= 0 && not (allowed_col s2 dev.Device.bel_col.(b_old)) then ()
        else begin
          let affected =
            if s2 >= 0 then List.sort_uniq compare (site_nets.(s) @ site_nets.(s2))
            else site_nets.(s)
          in
          let saved = List.map (fun ni -> net_cost.(ni)) affected in
          (* apply *)
          site_bel.(s) <- b_new;
          bel_site.(b_new) <- s;
          bel_site.(b_old) <- s2;
          if s2 >= 0 then site_bel.(s2) <- b_old;
          let delta = recompute affected in
          let temp = !temp_ref in
          if delta <= 0.0 || Srand.float rng 1.0 < exp (-.delta /. temp) then
            total := !total +. delta
          else begin
            (* revert *)
            site_bel.(s) <- b_old;
            bel_site.(b_old) <- s;
            bel_site.(b_new) <- s2;
            if s2 >= 0 then site_bel.(s2) <- b_new;
            restore affected saved
          end
        end
      end
    end
  in
  let try_pad_move () =
    (* swap the pad assignment of two same-direction port cells *)
    let cells, pads =
      if Srand.bool rng && n_inputs > 0 then (pack.Pack.live_inputs, in_pads)
      else if n_outputs > 0 then (pack.Pack.live_outputs, out_pads)
      else (pack.Pack.live_inputs, in_pads)
    in
    if Array.length cells = 0 then ()
    else begin
      let c1 = cells.(Srand.int rng (Array.length cells)) in
      let p2 = pads.(Srand.int rng (Array.length pads)) in
      let p1 = pad_of_cell.(c1) in
      if p1 <> p2 then begin
        let c2 = pad_cell.(p2) in
        let affected =
          let l1 = Option.value ~default:[] (Hashtbl.find_opt nets_of_cell c1) in
          let l2 =
            if c2 >= 0 then
              Option.value ~default:[] (Hashtbl.find_opt nets_of_cell c2)
            else []
          in
          List.sort_uniq compare (l1 @ l2)
        in
        let saved = List.map (fun ni -> net_cost.(ni)) affected in
        pad_of_cell.(c1) <- p2;
        pad_cell.(p2) <- c1;
        pad_cell.(p1) <- c2;
        if c2 >= 0 then pad_of_cell.(c2) <- p1;
        let delta = recompute affected in
        let temp = !temp_ref in
        if delta <= 0.0 || Srand.float rng 1.0 < exp (-.delta /. temp) then
          total := !total +. delta
        else begin
          pad_of_cell.(c1) <- p1;
          pad_cell.(p1) <- c1;
          pad_cell.(p2) <- c2;
          if c2 >= 0 then pad_of_cell.(c2) <- p2;
          restore affected saved
        end
      end
    end
  in
  let max_dim = max rows cols in
  for m = 0 to nmoves - 1 do
    let progress = float_of_int m /. float_of_int nmoves in
    temp_ref := max 0.005 (temp0 *. ((1.0 -. progress) ** 3.0));
    let shrink = (1.0 -. progress) ** 2.0 in
    radius_ref := max 2 (int_of_float (float_of_int max_dim *. shrink));
    if Srand.int rng 10 < 8 then try_site_move () else try_pad_move ()
  done;
  { site_bel; pad_of_cell; cost = !total }
