module Logic = Tmr_logic.Logic
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Netlist = Tmr_netlist.Netlist

type t = {
  bitstream : Bitstream.t;
  dut_bits : int array;
  used_wires : bool array;
  used_bels : bool array;
  used_pads : bool array;
}

let run dev db pack place route nl =
  let bs = Bitstream.create ~nbits:(Bitdb.num_bits db) in
  let used_wires = Array.make dev.Device.nwires false in
  let used_bels = Array.make dev.Device.nbels false in
  let used_pads = Array.make dev.Device.npads false in
  (* routing *)
  Array.iter
    (fun pips ->
      Array.iter (fun pipid -> Bitstream.set bs (Bitdb.pip_bit db pipid) true) pips)
    route.Route.net_pips;
  Array.iter
    (fun wires -> Array.iter (fun w -> used_wires.(w) <- true) wires)
    route.Route.net_wires;
  (* bels *)
  Array.iteri
    (fun s site ->
      let bel = place.Place.site_bel.(s) in
      used_bels.(bel) <- true;
      for idx = 0 to 15 do
        if (site.Pack.table lsr idx) land 1 = 1 then
          Bitstream.set bs (Bitdb.lut_bit db ~bel ~idx) true
      done;
      if site.Pack.registered then
        Bitstream.set bs (Bitdb.out_sel_bit db ~bel) true;
      (match site.Pack.ff with
      | Some ff -> (
          match Netlist.kind nl ff with
          | Netlist.Ff Logic.One ->
              Bitstream.set bs (Bitdb.ff_init_bit db ~bel) true
          | Netlist.Ff (Logic.Zero | Logic.X) -> ()
          | _ -> invalid_arg "Bitgen.run: site ff is not a flip-flop")
      | None -> ()))
    pack.Pack.sites;
  (* pads *)
  let mark_pad c =
    let pad = place.Place.pad_of_cell.(c) in
    if pad >= 0 then begin
      used_pads.(pad) <- true;
      used_wires.(dev.Device.pad_wire.(pad)) <- true;
      Bitstream.set bs (Bitdb.pad_enable_bit db ~pad) true
    end
  in
  Array.iter mark_pad pack.Pack.live_inputs;
  Array.iter mark_pad pack.Pack.live_outputs;
  (* DUT bit list *)
  let bits = ref [] in
  let add b = bits := b :: !bits in
  (* A routing bit is DUT-related when flipping it can alter a used net:
     any programmed pip (open), a pass pip with a used endpoint (short), or
     a buffered pip into a used wire (extra driver). *)
  for pipid = 0 to dev.Device.npips - 1 do
    let s = dev.Device.pip_src.(pipid) and d = dev.Device.pip_dst.(pipid) in
    let addr = Bitdb.pip_bit db pipid in
    let related =
      Bitstream.get bs addr
      || (if dev.Device.pip_bidir.(pipid) then used_wires.(s) || used_wires.(d)
          else used_wires.(d))
    in
    if related then add addr
  done;
  for bel = 0 to dev.Device.nbels - 1 do
    if used_bels.(bel) then begin
      for idx = 0 to 15 do
        add (Bitdb.lut_bit db ~bel ~idx)
      done;
      for pin = 0 to 3 do
        add (Bitdb.in_inv_bit db ~bel ~pin)
      done;
      add (Bitdb.out_sel_bit db ~bel);
      add (Bitdb.ce_inv_bit db ~bel);
      add (Bitdb.sr_inv_bit db ~bel);
      add (Bitdb.ff_init_bit db ~bel)
    end
  done;
  for pad = 0 to dev.Device.npads - 1 do
    if used_pads.(pad) then begin
      add (Bitdb.pad_enable_bit db ~pad);
      for attr = 0 to 2 do
        add (Bitdb.pad_cfg_bit db ~pad ~attr)
      done
    end
  done;
  let dut_bits = Array.of_list !bits in
  Array.sort compare dut_bits;
  { bitstream = bs; dut_bits; used_wires; used_bels; used_pads }

let dut_bits_by_class db t =
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun b ->
      let cls = Bitdb.class_of_bit db b in
      Hashtbl.replace counts cls
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts cls)))
    t.dut_bits;
  List.filter_map
    (fun cls ->
      match Hashtbl.find_opt counts cls with
      | Some n -> Some (cls, n)
      | None -> Some (cls, 0))
    [ Bitdb.Class_routing; Bitdb.Class_lut; Bitdb.Class_custom; Bitdb.Class_ff ]
