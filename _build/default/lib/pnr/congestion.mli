(** Routing congestion analysis and ASCII visualization.

    The paper's trade-off is about where nets of different TMR domains run
    close together; this module makes that visible: per-tile channel
    utilization, per-tile domain mixing, and an ASCII heatmap. *)

type t = {
  rows : int;
  cols : int;
  capacity : int;  (** channel wires owned by one tile position *)
  usage : int array array;  (** [row][col] used channel wires *)
  domain_mix : int array array;
      (** [row][col] number of distinct TMR domains routed through *)
  total_wirelength : int;  (** sum of spans of all used wires *)
  max_utilization : float;
}

val analyze : Tmr_arch.Device.t -> Route.result -> Tmr_netlist.Netlist.t -> Pack.t -> t
(** Domain mixing needs the mapped netlist (for net driver domains). *)

val heatmap : t -> string
(** One character per tile: [.]=idle, [1-9]=utilization decile, [!]=full. *)

val mix_map : t -> string
(** One character per tile: number of distinct domains routed through it
    ([.] for none) — where upset "b" can strike. *)

val summary : t -> string
