module Netlist = Tmr_netlist.Netlist
module Levelize = Tmr_netlist.Levelize
module Device = Tmr_arch.Device

type report = {
  critical_ns : float;
  mhz : float;
  logic_levels : int;
}

let lut_delay = 0.6
let clk_to_out = 0.5
let setup = 0.4
let pad_delay = 0.8

let analyze dev pack place route nl =
  let n = Netlist.num_cells nl in
  (* (net sink wire -> (pips, span)) per net *)
  let sink_delay = Hashtbl.create 1024 in
  Array.iteri
    (fun ni stats ->
      Array.iter
        (fun (wire, pips, span) ->
          Hashtbl.replace sink_delay (ni, wire)
            (0.3 +. (0.12 *. float_of_int pips) +. (0.05 *. float_of_int span)))
        stats)
    route.Route.sink_stats;
  let net_delay_to driver sink_wire =
    match pack.Pack.net_of_cell.(driver) with
    | -1 -> 0.3
    | ni -> (
        match Hashtbl.find_opt sink_delay (ni, sink_wire) with
        | Some d -> d
        | None -> 0.3)
  in
  let arrival = Array.make n 0.0 in
  let levels = Array.make n 0 in
  let crit = ref 0.0 in
  let crit_levels = ref 0 in
  let end_path a lv =
    if a > !crit then begin
      crit := a;
      crit_levels := lv
    end
  in
  let lev = Levelize.run_exn nl in
  Array.iter
    (fun c ->
      if pack.Pack.live.(c) then
        match Netlist.kind nl c with
        | Netlist.Input -> (arrival.(c) <- pad_delay; levels.(c) <- 0)
        | Netlist.Const _ -> (arrival.(c) <- 0.0; levels.(c) <- 0)
        | Netlist.Ff _ ->
            (* Q starts a new path; the D path is closed below. *)
            arrival.(c) <- clk_to_out;
            levels.(c) <- 0
        | Netlist.Lut _ -> (
            let s = pack.Pack.site_of_cell.(c) in
            if s < 0 then ((* absorbed into a paired site *)
                           arrival.(c) <- 0.0)
            else begin
              let site = pack.Pack.sites.(s) in
              let bel = place.Place.site_bel.(s) in
              let a = ref 0.0 and lv = ref 0 in
              Array.iteri
                (fun j p ->
                  if p >= 0 then begin
                    let wire = dev.Device.bel_in.(bel).(j) in
                    let arr = arrival.(p) +. net_delay_to p wire in
                    if arr > !a then a := arr;
                    if levels.(p) > !lv then lv := levels.(p)
                  end)
                site.Pack.pins;
              arrival.(c) <- !a +. lut_delay;
              levels.(c) <- !lv + 1;
              if site.Pack.registered then
                (* paired site: path ends at the internal FF D *)
                end_path (arrival.(c) +. setup) levels.(c)
            end)
        | Netlist.Output ->
            let src = (Netlist.fanins nl c).(0) in
            let pad = place.Place.pad_of_cell.(c) in
            let wire = if pad >= 0 then dev.Device.pad_wire.(pad) else -1 in
            let d = if wire >= 0 then net_delay_to src wire else 0.3 in
            let a = arrival.(src) +. d +. pad_delay in
            arrival.(c) <- a;
            levels.(c) <- levels.(src);
            end_path a levels.(c)
        | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2
        | Netlist.Mux2 | Netlist.Maj3 ->
            invalid_arg "Timing.analyze: unmapped netlist")
    lev.Levelize.order;
  (* Close register D paths for route-through / unpaired flip-flops. *)
  Netlist.iter_cells nl (fun c ->
      if pack.Pack.live.(c) then
        match Netlist.kind nl c with
        | Netlist.Ff _ ->
            let s = pack.Pack.site_of_cell.(c) in
            if s >= 0 then begin
              let site = pack.Pack.sites.(s) in
              match site.Pack.lut with
              | Some _ -> () (* paired: already closed at the LUT *)
              | None ->
                  let d = site.Pack.pins.(0) in
                  let bel = place.Place.site_bel.(s) in
                  let wire = dev.Device.bel_in.(bel).(0) in
                  let a =
                    arrival.(d) +. net_delay_to d wire +. lut_delay +. setup
                  in
                  end_path a (levels.(d) + 1)
            end
        | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Lut _
        | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2
        | Netlist.Mux2 | Netlist.Maj3 ->
            ());
  let critical_ns = max !crit 0.001 in
  { critical_ns; mhz = 1000.0 /. critical_ns; logic_levels = !crit_levels }
