module Device = Tmr_arch.Device
module Arch = Tmr_arch.Arch
module Netlist = Tmr_netlist.Netlist

type t = {
  rows : int;
  cols : int;
  capacity : int;
  usage : int array array;
  domain_mix : int array array;
  total_wirelength : int;
  max_utilization : float;
}

let analyze dev route nl pack =
  let p = dev.Device.params in
  let rows = p.Arch.rows and cols = p.Arch.cols in
  let usage = Array.make_matrix rows cols 0 in
  let domains = Array.make_matrix rows cols 0 (* bitmask of domains *) in
  let total_wirelength = ref 0 in
  let is_channel w =
    match dev.Device.wkind.(w) with
    | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
    | Device.HLong | Device.VLong ->
        true
    | Device.BelIn | Device.BelOut | Device.PadIn | Device.PadOut -> false
  in
  Array.iteri
    (fun ni wires ->
      let driver = pack.Pack.nets.(ni).Pack.driver in
      let d = Netlist.domain nl driver in
      Array.iter
        (fun w ->
          total_wirelength := !total_wirelength + Device.wire_span dev w;
          if is_channel w then begin
            let r = min (rows - 1) dev.Device.wrow.(w) in
            let c = min (cols - 1) dev.Device.wcol.(w) in
            usage.(r).(c) <- usage.(r).(c) + 1;
            if d >= 0 then domains.(r).(c) <- domains.(r).(c) lor (1 lsl d)
          end)
        wires)
    route.Route.net_wires;
  let domain_mix =
    Array.map
      (Array.map (fun mask ->
           let rec pop v = if v = 0 then 0 else (v land 1) + pop (v lsr 1) in
           pop mask))
      domains
  in
  (* channel wires anchored at one tile position: H and V singles, doubles
     (longs excluded: they are shared across the row/column) *)
  let capacity = 2 * (p.Arch.ch_singles + p.Arch.ch_doubles) in
  let max_utilization =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc u -> max acc (float_of_int u /. float_of_int capacity))
          acc row)
      0.0 usage
  in
  { rows; cols; capacity; usage; domain_mix;
    total_wirelength = !total_wirelength; max_utilization }

let render cell t =
  let buf = Buffer.create (t.rows * (t.cols + 1)) in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      Buffer.add_char buf (cell r c)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let heatmap t =
  render
    (fun r c ->
      let u = t.usage.(r).(c) in
      if u = 0 then '.'
      else begin
        let decile = 10 * u / max 1 t.capacity in
        if decile >= 10 then '!'
        else if decile = 0 then '1'
        else Char.chr (Char.code '0' + decile)
      end)
    t

let mix_map t =
  render
    (fun r c ->
      match t.domain_mix.(r).(c) with
      | 0 -> '.'
      | n -> Char.chr (Char.code '0' + min n 9))
    t

let summary t =
  let busy = ref 0 and mixed = ref 0 in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      if t.usage.(r).(c) > 0 then incr busy;
      if t.domain_mix.(r).(c) >= 2 then incr mixed
    done
  done;
  Printf.sprintf
    "wirelength=%d, busy tiles=%d/%d, tiles mixing >=2 domains=%d, peak \
     channel utilization=%.0f%%"
    t.total_wirelength !busy (t.rows * t.cols) !mixed
    (100.0 *. t.max_utilization)
