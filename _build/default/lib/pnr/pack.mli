(** Packing: assign mapped netlist cells to abstract bel sites.

    A site realises one LUT4 and/or one flip-flop:
    - a LUT whose only reader is a flip-flop is paired with it (the LUT
      output feeds the FF internally and the site exposes the registered
      value);
    - a flip-flop driven by anything else gets a route-through site (an
      identity LUT on pin 0);
    - a surviving constant cell gets a constant-table site with no pins.

    Dead cells (not backward-reachable from an output port) are dropped.
    Sites are abstract here; {!Place} binds them to device bels. *)

type site = {
  lut : int option;  (** netlist cell realised combinationally *)
  ff : int option;
  pins : int array;  (** driver cell per pin 0..3; -1 = unused pin *)
  table : int;  (** full 16-entry truth table (unused pins don't care) *)
  registered : bool;  (** site output is the FF value *)
  out_cell : int;  (** the netlist cell whose net this site drives *)
}

type sink =
  | Site_pin of int * int  (** site index, pin number *)
  | Out_pad of int  (** Output cell id *)

type net = {
  driver : int;  (** driver cell: an Input cell or a site's [out_cell] *)
  sinks : sink list;
}

type t = {
  sites : site array;
  site_of_cell : int array;  (** cell -> site index, -1 if none *)
  nets : net array;
  net_of_cell : int array;  (** driver cell -> net index, -1 if none *)
  live : bool array;
  live_inputs : int array;  (** live Input cells in port order *)
  live_outputs : int array;  (** live Output cells in port order *)
}

val run : Tmr_netlist.Netlist.t -> t
(** The netlist must be in post-techmap form ({!Tmr_techmap.Techmap.check_only_mapped_kinds}). *)

val identity_table : int
(** Truth table of the route-through LUT (output = pin 0). *)
