module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Srand = Tmr_logic.Srand

type params = {
  coeffs : int array;
  input_width : int;
  acc_width : int;
}

let paper_params =
  {
    coeffs = [| 1; -1; -9; 6; 73; 120; 73; 6; -9; -1; 1 |];
    input_width = 9;
    acc_width = 18;
  }

let tiny_params = { coeffs = [| 1; -2; 3 |]; input_width = 5; acc_width = 10 }

let build p =
  let nl = Netlist.create () in
  Netlist.set_comp nl "input";
  let x = Word.input nl "x" ~width:p.input_width in
  let taps = Array.length p.coeffs in
  (* delay line: delayed.(i) = x[n-i] *)
  let delayed = Array.make taps x in
  for i = 1 to taps - 1 do
    Netlist.with_comp nl
      (Printf.sprintf "tap%02d/reg" i)
      (fun () -> delayed.(i) <- Word.reg nl delayed.(i - 1))
  done;
  (* products and accumulation chain *)
  let acc = ref None in
  for i = 0 to taps - 1 do
    let product =
      Netlist.with_comp nl
        (Printf.sprintf "tap%02d/mult" i)
        (fun () -> Word.mul_const nl delayed.(i) p.coeffs.(i) ~width:p.acc_width)
    in
    acc :=
      Some
        (match !acc with
        | None -> product
        | Some sum ->
            Netlist.with_comp nl
              (Printf.sprintf "tap%02d/add" i)
              (fun () -> Word.add nl sum product))
  done;
  Netlist.set_comp nl "output";
  (match !acc with
  | Some sum -> Word.output nl "y" sum
  | None -> invalid_arg "Fir.build: no coefficients");
  Netlist.set_comp nl "";
  nl

let stimulus ?(cycles = 48) ~seed p =
  let rng = Srand.create seed in
  let amplitude = (1 lsl (p.input_width - 1)) - 1 in
  Array.init cycles (fun t ->
      if t = 0 then amplitude (* impulse *)
      else if t < 4 then 0
      else if t < 12 then amplitude / 2 (* step *)
      else Srand.int rng ((2 * amplitude) + 1) - amplitude)
