(** Software reference model of the FIR filter — the "Golden device" of the
    paper's fault-injection system, §4 (a copy of the DUT without TMR).

    Semantics match the netlist exactly: the output sample for an input is
    the combinational response before the clock edge; {!step} returns it
    and then shifts the delay line.  All arithmetic wraps at [acc_width]
    bits. *)

type t

val create : Fir.params -> t
val reset : t -> unit

val step : t -> int -> int
(** [step t x] = filter output for this cycle, then advances the delay
    line. *)

val run : Fir.params -> int array -> int array
(** Whole-sequence convenience: reset, then map {!step}. *)
