type t = {
  params : Fir.params;
  delay : int array;  (* delay.(i) = x[n-i-1] *)
}

let create params =
  { params; delay = Array.make (Array.length params.Fir.coeffs - 1) 0 }

let reset t = Array.fill t.delay 0 (Array.length t.delay) 0

let wrap width v =
  let m = 1 lsl width in
  let r = v land (m - 1) in
  if r land (1 lsl (width - 1)) <> 0 then r - m else r

let step t x =
  let p = t.params in
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      let sample = if i = 0 then x else t.delay.(i - 1) in
      acc := wrap p.Fir.acc_width (!acc + wrap p.Fir.acc_width (c * sample)))
    p.Fir.coeffs;
  (* shift the delay line *)
  for i = Array.length t.delay - 1 downto 1 do
    t.delay.(i) <- t.delay.(i - 1)
  done;
  if Array.length t.delay > 0 then t.delay.(0) <- x;
  !acc

let run params inputs =
  let t = create params in
  reset t;
  Array.map (step t) inputs
