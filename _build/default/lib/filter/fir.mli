(** The paper's case study: an 11-tap 9-bit low-pass FIR filter.

    Direct form: a 9-bit register delay line on the input samples, one
    constant-coefficient multiplier per tap (shift-and-add networks, since
    the coefficients are constants) and a chain of 18-bit adders — "eleven
    dedicated 9-bit multipliers, ten 18-bit adders and ten 9-bit
    registers".  Coefficients are the paper's Matlab design scaled by 512:
    1, -1, -9, 6, 73, 120, mirrored. *)

type params = {
  coeffs : int array;
  input_width : int;
  acc_width : int;
}

val paper_params : params
(** 11 symmetric coefficients [1; -1; -9; 6; 73; 120; 73; 6; -9; -1; 1],
    9-bit input, 18-bit accumulation. *)

val tiny_params : params
(** A 3-tap variant for unit tests. *)

val build : params -> Tmr_netlist.Netlist.t
(** Ports: input ["x"] ([input_width] bits), output ["y"] ([acc_width]
    bits).  Components are labelled ["tapNN/mult"], ["tapNN/add"],
    ["tapNN/reg"] so the {!Tmr_core.Partition} strategies can find the
    block boundaries. *)

val stimulus : ?cycles:int -> seed:int -> params -> int array
(** Deterministic test pattern: an impulse, a step, then seeded random
    samples, all within the signed input range. *)
