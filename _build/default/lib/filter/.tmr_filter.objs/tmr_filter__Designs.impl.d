lib/filter/designs.ml: Fir Tmr_core
