lib/filter/golden.mli: Fir
