lib/filter/designs.mli: Fir Tmr_core Tmr_netlist
