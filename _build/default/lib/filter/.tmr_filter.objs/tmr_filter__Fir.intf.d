lib/filter/fir.mli: Tmr_netlist
