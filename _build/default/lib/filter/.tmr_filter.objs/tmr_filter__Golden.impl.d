lib/filter/golden.ml: Array Fir
