lib/filter/fir.ml: Array Printf Tmr_logic Tmr_netlist
