module Logic = Tmr_logic.Logic
module Srand = Tmr_logic.Srand
module Netlist = Tmr_netlist.Netlist
module Netsim = Tmr_netlist.Netsim

type mismatch = {
  cycle : int;
  port : string;
  expected : string;
  got : string;
}

let bits_string bits =
  let n = Array.length bits in
  String.init n (fun i -> Logic.to_char bits.(n - 1 - i))

(* Per-port stimulus: directed corners first (all-0, all-1, alternating,
   min, max, +1/-1), then seeded random. *)
let vector_for rng ~width ~cycle =
  let corners =
    [| 0; -1; 0x5555_5555; 0x2AAA_AAAA; 1; -2; 1 lsl (max 0 (width - 1)) |]
  in
  if cycle < Array.length corners then corners.(cycle)
  else Srand.int rng (1 lsl min width 30) - (1 lsl (min width 30 - 1))

let co_simulate ~cycles ~seed ~reference ~candidate ~drive_candidate =
  let rng = Srand.create (seed * 97 + 5) in
  let ref_sim = Netsim.create reference in
  let cand_sim = Netsim.create candidate in
  Netsim.reset ref_sim;
  Netsim.reset cand_sim;
  let in_ports = Netlist.input_ports reference in
  let out_ports = Netlist.output_ports reference in
  let result = ref (Ok ()) in
  let cycle = ref 0 in
  while !result = Ok () && !cycle < cycles do
    List.iter
      (fun (port, bits) ->
        let v = vector_for rng ~width:(Array.length bits) ~cycle:!cycle in
        Netsim.set_input ref_sim port v;
        drive_candidate cand_sim port v)
      in_ports;
    Netsim.eval ref_sim;
    Netsim.eval cand_sim;
    List.iter
      (fun (port, _) ->
        if !result = Ok () then begin
          let expected = Netsim.output_bits ref_sim port in
          let got = Netsim.output_bits cand_sim port in
          let equal =
            Array.length expected = Array.length got
            && Array.for_all2 Logic.equal expected got
          in
          if not equal then
            result :=
              Error
                {
                  cycle = !cycle;
                  port;
                  expected = bits_string expected;
                  got = bits_string got;
                }
        end)
      out_ports;
    Netsim.clock ref_sim;
    Netsim.clock cand_sim;
    incr cycle
  done;
  !result

let check_tmr ?(cycles = 256) ?(seed = 1) ~reference ~tmr () =
  co_simulate ~cycles ~seed ~reference ~candidate:tmr
    ~drive_candidate:(fun sim port v ->
      for d = 0 to Tmr.domains - 1 do
        Netsim.set_input sim (Tmr.redundant_port port d) v
      done)

let check_same_ports ?(cycles = 256) ?(seed = 1) ~reference ~candidate () =
  co_simulate ~cycles ~seed ~reference ~candidate
    ~drive_candidate:(fun sim port v -> Netsim.set_input sim port v)
