(** Bounded sequential equivalence between a design and its TMR version.

    After {!Tmr.triplicate}, the protected netlist must compute exactly the
    original function when its three input-port copies are driven
    identically.  This checker co-simulates both netlists over directed
    corner vectors plus seeded random stimulus and reports the first
    mismatch.  It is the flow's self-check (run by the tests and available
    to users), not a formal proof: coverage is bounded by [cycles]. *)

type mismatch = {
  cycle : int;
  port : string;
  expected : string;  (** reference bits, MSB first *)
  got : string;
}

val check_tmr :
  ?cycles:int ->
  ?seed:int ->
  reference:Tmr_netlist.Netlist.t ->
  tmr:Tmr_netlist.Netlist.t ->
  unit ->
  (unit, mismatch) result
(** Drives every reference input port [p] and the TMR copies [p~0..2]
    with the same values; compares every output port every cycle.
    Default 256 cycles. *)

val check_same_ports :
  ?cycles:int ->
  ?seed:int ->
  reference:Tmr_netlist.Netlist.t ->
  candidate:Tmr_netlist.Netlist.t ->
  unit ->
  (unit, mismatch) result
(** Same-port-name equivalence (e.g. pre- vs post-techmap netlists). *)
