lib/core/equiv.mli: Tmr_netlist
