lib/core/partition.ml: Array List String Tmr Tmr_netlist
