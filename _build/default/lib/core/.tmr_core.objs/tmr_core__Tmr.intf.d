lib/core/tmr.mli: Tmr_netlist
