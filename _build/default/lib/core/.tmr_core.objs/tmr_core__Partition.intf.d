lib/core/partition.mli: Tmr Tmr_netlist
