lib/core/tmr.ml: Array List Printf Tmr_logic Tmr_netlist
