lib/core/equiv.ml: Array List String Tmr Tmr_logic Tmr_netlist
