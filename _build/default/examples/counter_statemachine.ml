(* State-machine logic and the TMR register with voters (paper fig. 2).

   A counter's state feeds back on itself, so an upset in a flip-flop is
   never flushed by fresh data: the paper's point is that voting each
   register lets the feedback path repair the state, while mere
   triplication locks the corruption in — and a second upset in another
   domain then defeats the majority.

   Run with: dune exec examples/counter_statemachine.exe *)

module Logic = Tmr_logic.Logic
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Netsim = Tmr_netlist.Netsim
module Partition = Tmr_core.Partition
module Tmr = Tmr_core.Tmr

(* count <= en ? count + 1 : count *)
let build_counter ~width =
  let nl = Netlist.create () in
  Netlist.set_comp nl "input";
  let en = Word.input nl "en" ~width:1 in
  Netlist.set_comp nl "counter/reg";
  let zero = Word.const nl ~width 0 in
  let state = Word.reg nl zero in
  Netlist.set_comp nl "counter/inc";
  let one = Word.const nl ~width 1 in
  let next = Word.add nl state one in
  let gated = Word.mux2 nl ~sel:en.(0) state next in
  Array.iteri (fun i ff -> Netlist.set_fanin nl ff 0 gated.(i)) state;
  Netlist.set_comp nl "output";
  Word.output nl "count" state;
  Netlist.set_comp nl "";
  nl

let run_with_upsets nl ~label ~cycles =
  let sim = Netsim.create nl in
  Netsim.reset sim;
  (* one counter flip-flop per domain *)
  let ff_of_domain = Array.make 3 (-1) in
  Netlist.iter_cells nl (fun c ->
      match Netlist.kind nl c with
      | Netlist.Ff _ ->
          let d = Netlist.domain nl c in
          if d >= 0 && ff_of_domain.(d) < 0 then ff_of_domain.(d) <- c
      | _ -> ());
  Printf.printf "%s:\n  cycle:" label;
  for cycle = 0 to cycles - 1 do
    Printf.printf " %3d" cycle
  done;
  print_newline ();
  Printf.printf "  count:";
  for cycle = 0 to cycles - 1 do
    List.iter
      (fun d -> Netsim.set_input sim (Tmr.redundant_port "en" d) 1)
      [ 0; 1; 2 ];
    if cycle = 4 then begin
      let ff = ff_of_domain.(0) in
      Netsim.set_ff sim ff (Logic.logic_not (Netsim.value sim ff))
    end;
    if cycle = 10 then begin
      let ff = ff_of_domain.(1) in
      Netsim.set_ff sim ff (Logic.logic_not (Netsim.value sim ff))
    end;
    Netsim.eval sim;
    (match Netsim.output_int sim "count" with
    | Some v -> Printf.printf " %3d" (v land 0xff)
    | None -> Printf.printf "   X");
    Netsim.clock sim
  done;
  print_newline ()

let () =
  let base = build_counter ~width:8 in
  print_endline
    "SEU in a counter flip-flop at cycle 4 (domain 0) and cycle 10 (domain 1):";
  run_with_upsets
    (Partition.protect base Partition.Min_partition)
    ~label:"TMR, voted registers (fig. 2) - self-heals, counts on"
    ~cycles:16;
  run_with_upsets
    (Partition.protect base Partition.Min_partition_nv)
    ~label:"TMR, unvoted registers - first upset sticks, second defeats vote"
    ~cycles:16
