(* Anatomy of single configuration upsets: pick one fault of each effect
   class, inject it, and show what the fabric now computes, cycle by
   cycle, against the golden device.

   Run with: dune exec examples/upset_anatomy.exe *)

module Logic = Tmr_logic.Logic
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Partition = Tmr_core.Partition
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Campaign = Tmr_inject.Campaign
module Classify = Tmr_inject.Classify
module Extract = Tmr_fabric.Extract
module Fsim = Tmr_fabric.Fsim
module Impl = Tmr_pnr.Impl
module Netlist = Tmr_netlist.Netlist

let () =
  let ctx = Context.create ~scale:Context.Reduced ~faults_per_design:0 () in
  let run = Runs.implement_design ctx Partition.Unprotected in
  let impl = run.Runs.impl in
  let bits = run.Runs.faultlist.Tmr_inject.Faultlist.bits in
  (* one example bit per effect class *)
  let example_of_effect eff =
    Array.find_opt (fun b -> Classify.classify impl b = eff) bits
  in
  let stim = ctx.Context.stimulus in
  let golden = Campaign.golden_outputs ctx.Context.golden_nl stim in
  let y_golden = List.assoc "y" golden in
  let out_wires =
    let bits = Netlist.find_output_port impl.Impl.mapped "y" in
    Array.init (Array.length bits) (Impl.output_pad_wire impl "y")
  in
  let in_wires =
    let bits = Netlist.find_input_port impl.Impl.mapped "x" in
    Array.init (Array.length bits) (Impl.input_pad_wire impl "x")
  in
  let samples = List.assoc "x" stim.Campaign.inputs in
  let show_run ex =
    let sim = Fsim.build ex ~watch_outputs:out_wires in
    Fsim.reset sim;
    let shown = ref 0 in
    for cycle = 0 to stim.Campaign.cycles - 1 do
      Array.iteri
        (fun i w ->
          Fsim.set_pad sim w
            (Logic.of_bool ((samples.(cycle) asr i) land 1 = 1)))
        in_wires;
      Fsim.eval sim;
      let n_out = Array.length out_wires in
      let dut =
        String.init n_out (fun i ->
            Logic.to_char (Fsim.read sim out_wires.(n_out - 1 - i)))
      in
      let gold =
        String.init
          (Array.length y_golden.(cycle))
          (fun i ->
            Logic.to_char
              y_golden.(cycle).(Array.length y_golden.(cycle) - 1 - i))
      in
      if dut <> gold && !shown < 3 then begin
        incr shown;
        Printf.printf "    cycle %2d  golden %s\n" cycle gold;
        Printf.printf "              dut    %s\n" dut
      end;
      Fsim.clock sim
    done;
    if !shown = 0 then print_endline "    (silent: no output difference)"
  in
  List.iter
    (fun eff ->
      match example_of_effect eff with
      | None -> Printf.printf "%-14s no candidate bit\n" (Classify.name eff)
      | Some bit ->
          Printf.printf "%-14s bit %d (frame %d):\n" (Classify.name eff) bit
            (Bitdb.frame_of_bit ctx.Context.db bit);
          let ex =
            Extract.create ctx.Context.dev ctx.Context.db
              (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
          in
          Extract.apply_bit_flip ex bit;
          show_run ex)
    Classify.all
