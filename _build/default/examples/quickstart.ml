(* Quickstart: protect a small datapath with TMR, implement it on the FPGA
   model, and measure its upset robustness by bitstream fault injection.

   Run with: dune exec examples/quickstart.exe *)

module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Partition = Tmr_core.Partition
module Campaign = Tmr_inject.Campaign

(* 1. Describe a circuit with the word-level builder: y = reg (3*a + b). *)
let build_design () =
  let nl = Netlist.create () in
  Netlist.set_comp nl "input";
  let a = Word.input nl "a" ~width:8 in
  let b = Word.input nl "b" ~width:8 in
  let p = Netlist.with_comp nl "mac/mult" (fun () -> Word.mul_const nl a 3 ~width:8) in
  let s = Netlist.with_comp nl "mac/add" (fun () -> Word.add nl p b) in
  let r = Netlist.with_comp nl "mac/reg" (fun () -> Word.reg nl s) in
  Netlist.set_comp nl "output";
  Word.output nl "y" r;
  nl

let () =
  let design = build_design () in
  (* 2. Apply TMR: triplicate and insert voter barriers at every component
        boundary (the paper's maximum partition). *)
  let protected_nl = Partition.protect design Partition.Max_partition in
  Printf.printf "original : %s\n"
    (Format.asprintf "%a" Tmr_netlist.Stats.pp (Tmr_netlist.Stats.compute design));
  Printf.printf "TMR      : %s\n"
    (Format.asprintf "%a" Tmr_netlist.Stats.pp
       (Tmr_netlist.Stats.compute protected_nl));
  (* 3. Implement on the small device model. *)
  let dev = Tmr_arch.Device.build Tmr_arch.Arch.small in
  let db = Tmr_arch.Bitdb.build dev in
  let impl = Tmr_pnr.Impl.implement_exn ~seed:7 dev db protected_nl in
  Printf.printf "implemented: %d slices, %.1f MHz estimated\n"
    (Tmr_pnr.Impl.used_slices impl) impl.Tmr_pnr.Impl.timing.Tmr_pnr.Timing.mhz;
  (* 4. Inject 300 random configuration upsets and compare against the
        unprotected design simulated as the golden reference. *)
  let faultlist = Tmr_inject.Faultlist.of_impl impl in
  let faults = Tmr_inject.Faultlist.sample faultlist ~seed:42 ~count:300 in
  let rng = Tmr_logic.Srand.create 5 in
  let cycles = 32 in
  let stimulus =
    {
      Campaign.cycles;
      inputs =
        [
          ("a", Array.init cycles (fun _ -> Tmr_logic.Srand.int rng 256 - 128));
          ("b", Array.init cycles (fun _ -> Tmr_logic.Srand.int rng 256 - 128));
        ];
    }
  in
  let c =
    Campaign.run ~name:"quickstart" ~impl ~golden:design ~stimulus ~faults ()
  in
  Printf.printf "injected %d upsets: %d wrong answers (%.2f%%)\n"
    c.Campaign.injected c.Campaign.wrong (Campaign.wrong_percent c)
