examples/partition_sweep.ml: Array List Printf String Sys Tmr_core Tmr_experiments Tmr_filter Tmr_inject Tmr_logic Tmr_netlist Tmr_pnr
