examples/quickstart.ml: Array Format Printf Tmr_arch Tmr_core Tmr_inject Tmr_logic Tmr_netlist Tmr_pnr
