examples/partition_sweep.mli:
