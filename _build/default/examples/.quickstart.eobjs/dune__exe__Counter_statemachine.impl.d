examples/counter_statemachine.ml: Array List Printf Tmr_core Tmr_logic Tmr_netlist
