examples/upset_anatomy.mli:
