examples/quickstart.mli:
