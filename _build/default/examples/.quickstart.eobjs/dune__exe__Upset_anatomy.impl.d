examples/upset_anatomy.ml: Array List Printf String Tmr_arch Tmr_core Tmr_experiments Tmr_fabric Tmr_inject Tmr_logic Tmr_netlist Tmr_pnr
