examples/counter_statemachine.mli:
