test/test_arch.ml: Alcotest Array Filename Lazy List QCheck QCheck_alcotest Sys Tmr_arch Tmr_logic
