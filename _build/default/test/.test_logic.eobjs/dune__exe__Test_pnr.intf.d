test/test_pnr.mli:
