test/test_core.ml: Alcotest Array List Printf QCheck QCheck_alcotest Tmr_core Tmr_logic Tmr_netlist Tmr_techmap
