test/test_netlist.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Tmr_logic Tmr_netlist
