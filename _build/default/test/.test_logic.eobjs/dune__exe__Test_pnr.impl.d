test/test_pnr.ml: Alcotest Array Hashtbl Lazy List Printf String Tmr_arch Tmr_core Tmr_filter Tmr_logic Tmr_netlist Tmr_pnr Tmr_techmap
