test/test_export.ml: Alcotest List Tmr_core Tmr_netlist
