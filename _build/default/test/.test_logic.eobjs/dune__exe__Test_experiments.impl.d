test/test_experiments.ml: Alcotest Array Lazy List Printf String Tmr_core Tmr_experiments Tmr_inject
