test/test_logic.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest String Tmr_logic
