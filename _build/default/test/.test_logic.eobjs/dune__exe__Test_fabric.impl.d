test/test_fabric.ml: Alcotest Array Lazy List QCheck QCheck_alcotest String Tmr_arch Tmr_fabric Tmr_logic Tmr_netlist Tmr_pnr
