test/test_inject.ml: Alcotest Array Hashtbl Lazy List Printf Tmr_arch Tmr_core Tmr_filter Tmr_inject Tmr_logic Tmr_pnr
