test/test_techmap.ml: Alcotest Array List Printf QCheck QCheck_alcotest Tmr_logic Tmr_netlist Tmr_techmap
