test/test_filter.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest String Tmr_core Tmr_filter Tmr_netlist
