module Logic = Tmr_logic.Logic
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Netsim = Tmr_netlist.Netsim
module Check = Tmr_netlist.Check
module Stats = Tmr_netlist.Stats
module Techmap = Tmr_techmap.Techmap

let signed_gen width =
  QCheck.Gen.map
    (fun v -> v - (1 lsl (width - 1)))
    (QCheck.Gen.int_bound ((1 lsl width) - 1))

(* Build a representative datapath: r = reg ((a + b) * 6 - a). *)
let build_datapath () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:8 in
  let b = Word.input nl "b" ~width:8 in
  let s = Word.add nl a b in
  let p = Word.mul_const nl s 6 ~width:8 in
  let d = Word.sub nl p a in
  let r = Word.reg nl d in
  Word.output nl "r" r;
  nl

let run_seq nl stimulus =
  let sim = Netsim.create nl in
  Netsim.reset sim;
  List.map
    (fun (a, b) ->
      Netsim.set_input sim "a" a;
      Netsim.set_input sim "b" b;
      Netsim.step sim;
      Netsim.output_int sim "r")
    stimulus

let qcheck_mapping_preserves_behaviour =
  QCheck.Test.make ~count:60 ~name:"mapped netlist is sequentially equivalent"
    (QCheck.make
       (QCheck.Gen.list_size (QCheck.Gen.return 6)
          (QCheck.Gen.pair (signed_gen 8) (signed_gen 8))))
    (fun stimulus ->
      let nl = build_datapath () in
      let { Techmap.mapped; _ } = Techmap.run nl in
      run_seq nl stimulus = run_seq mapped stimulus)

let test_only_mapped_kinds () =
  let nl = build_datapath () in
  let { Techmap.mapped; _ } = Techmap.run nl in
  Alcotest.(check bool) "pre-map has gates" false
    (Techmap.check_only_mapped_kinds nl);
  Alcotest.(check bool) "post-map pure" true
    (Techmap.check_only_mapped_kinds mapped);
  Check.run_exn mapped

let test_mapping_reduces_cells () =
  let nl = build_datapath () in
  let { Techmap.mapped; _ } = Techmap.run nl in
  let before = (Stats.compute nl).Stats.gates in
  let after = (Stats.compute mapped).Stats.gates in
  Alcotest.(check bool)
    (Printf.sprintf "LUTs (%d) < gates (%d)" after before)
    true (after < before)

let test_lut_arity_bound () =
  let nl = build_datapath () in
  let { Techmap.mapped; _ } = Techmap.run nl in
  Netlist.iter_cells mapped (fun c ->
      match Netlist.kind mapped c with
      | Netlist.Lut { arity; _ } ->
          Alcotest.(check bool) "arity in 1..4" true (arity >= 1 && arity <= 4)
      | _ -> ())

let test_voter_survives_as_maj_lut () =
  let nl = Netlist.create () in
  let mk d = Netlist.add_cell nl ~domain:d Netlist.Input ~fanins:[||] in
  let a = mk 0 and b = mk 1 and c = mk 2 in
  (* Some upstream logic in domain 0 that feeds the voter. *)
  let g = Netlist.add_cell nl ~domain:0 Netlist.Not ~fanins:[| a |] in
  let g2 = Netlist.add_cell nl ~domain:0 Netlist.Not ~fanins:[| g |] in
  let v =
    Netlist.add_cell nl ~domain:0 ~voter:true Netlist.Maj3
      ~fanins:[| g2; b; c |]
  in
  let out = Netlist.add_cell nl ~domain:0 Netlist.Output ~fanins:[| v |] in
  Netlist.add_output_port nl "o" [| out |];
  let { Techmap.mapped; cell_map } = Techmap.run nl in
  let v' = cell_map.(v) in
  Alcotest.(check bool) "voter mapped" true (v' >= 0);
  Alcotest.(check bool) "still a voter" true (Netlist.is_voter mapped v');
  (match Netlist.kind mapped v' with
  | Netlist.Lut { arity = 3; _ } -> ()
  | k -> Alcotest.failf "voter mapped to %a" Netlist.pp_kind k);
  (* Upstream double-inverter must not have been folded through the voter:
     the voter's support is exactly its three domain copies. *)
  Check.run_exn mapped

let test_constant_folding () =
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let zero = Netlist.add_cell nl (Netlist.Const Logic.Zero) ~fanins:[||] in
  let g = Netlist.add_cell nl Netlist.And2 ~fanins:[| a; zero |] in
  let out = Netlist.add_cell nl Netlist.Output ~fanins:[| g |] in
  Netlist.add_output_port nl "o" [| out |];
  Netlist.add_input_port nl "a" [| a |];
  let { Techmap.mapped; _ } = Techmap.run nl in
  let sim = Netsim.create mapped in
  Netsim.reset sim;
  Netsim.set_input sim "a" 1;
  Netsim.eval sim;
  Alcotest.(check (option int)) "a AND 0 = 0" (Some 0)
    (Netsim.output_int sim "o")

let test_ports_preserved () =
  let nl = build_datapath () in
  let { Techmap.mapped; _ } = Techmap.run nl in
  let names l = List.map fst l in
  Alcotest.(check (list string)) "inputs" (names (Netlist.input_ports nl))
    (names (Netlist.input_ports mapped));
  Alcotest.(check (list string)) "outputs" (names (Netlist.output_ports nl))
    (names (Netlist.output_ports mapped))

let test_fanout_gate_not_duplicated () =
  (* A gate read twice must become a shared LUT, not be duplicated. *)
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let b = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let shared = Netlist.add_cell nl Netlist.Xor2 ~fanins:[| a; b |] in
  let u = Netlist.add_cell nl Netlist.Not ~fanins:[| shared |] in
  let v = Netlist.add_cell nl Netlist.And2 ~fanins:[| shared; a |] in
  let o1 = Netlist.add_cell nl Netlist.Output ~fanins:[| u |] in
  let o2 = Netlist.add_cell nl Netlist.Output ~fanins:[| v |] in
  Netlist.add_output_port nl "o1" [| o1 |];
  Netlist.add_output_port nl "o2" [| o2 |];
  let { Techmap.mapped; cell_map } = Techmap.run nl in
  Alcotest.(check bool) "shared survives" true (cell_map.(shared) >= 0);
  let st = Stats.compute mapped in
  Alcotest.(check int) "three LUTs" 3 st.Stats.luts

let () =
  Alcotest.run "tmr_techmap"
    [
      ( "techmap",
        [
          QCheck_alcotest.to_alcotest qcheck_mapping_preserves_behaviour;
          Alcotest.test_case "only mapped kinds remain" `Quick
            test_only_mapped_kinds;
          Alcotest.test_case "mapping reduces cell count" `Quick
            test_mapping_reduces_cells;
          Alcotest.test_case "LUT arity bounded" `Quick test_lut_arity_bound;
          Alcotest.test_case "voter survives as majority LUT" `Quick
            test_voter_survives_as_maj_lut;
          Alcotest.test_case "constants folded" `Quick test_constant_folding;
          Alcotest.test_case "ports preserved" `Quick test_ports_preserved;
          Alcotest.test_case "shared gates not duplicated" `Quick
            test_fanout_gate_not_duplicated;
        ] );
    ]
