module Logic = Tmr_logic.Logic
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Netsim = Tmr_netlist.Netsim
module Check = Tmr_netlist.Check
module Stats = Tmr_netlist.Stats
module Tmr = Tmr_core.Tmr
module Partition = Tmr_core.Partition

let signed_gen width =
  QCheck.Gen.map
    (fun v -> v - (1 lsl (width - 1)))
    (QCheck.Gen.int_bound ((1 lsl width) - 1))

(* A design with components, registers and feedback-free datapath. *)
let build_design () =
  let nl = Netlist.create () in
  Netlist.set_comp nl "input";
  let a = Word.input nl "a" ~width:6 in
  let p = Netlist.with_comp nl "u0/mult" (fun () -> Word.mul_const nl a (-3) ~width:8) in
  let r = Netlist.with_comp nl "u0/reg" (fun () -> Word.reg nl p) in
  let q = Netlist.with_comp nl "u1/add" (fun () -> Word.add nl r (Word.resize nl a ~width:8)) in
  Netlist.set_comp nl "output";
  Word.output nl "y" q;
  nl

let run_plain nl stimulus =
  let sim = Netsim.create nl in
  Netsim.reset sim;
  List.map
    (fun v ->
      Netsim.set_input sim "a" v;
      Netsim.step sim;
      Netsim.output_int sim "y")
    stimulus

let run_tmr nl stimulus =
  let sim = Netsim.create nl in
  Netsim.reset sim;
  List.map
    (fun v ->
      List.iter
        (fun d -> Netsim.set_input sim (Tmr.redundant_port "a" d) v)
        [ 0; 1; 2 ];
      Netsim.step sim;
      Netsim.output_int sim "y")
    stimulus

let strategies =
  [ Partition.Max_partition; Partition.Medium_partition;
    Partition.Min_partition; Partition.Min_partition_nv ]

let qcheck_tmr_equivalence =
  QCheck.Test.make ~count:30 ~name:"TMR designs compute the original function"
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.return 8) (signed_gen 6)))
    (fun stimulus ->
      let base = build_design () in
      let expected = run_plain base stimulus in
      List.for_all
        (fun strategy ->
          let tmr = Partition.protect base strategy in
          run_tmr tmr stimulus = expected)
        strategies)

let test_check_passes_all_strategies () =
  let base = build_design () in
  List.iter
    (fun strategy ->
      let tmr = Partition.protect base strategy in
      match Check.run tmr with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s: %s" (Partition.name strategy) (List.hd es))
    strategies

let test_voter_counts () =
  let base = build_design () in
  let voters strategy =
    (Stats.compute (Partition.protect base strategy)).Stats.voters
  in
  let p1 = voters Partition.Max_partition in
  let p2 = voters Partition.Medium_partition in
  let p3 = voters Partition.Min_partition in
  let nv = voters Partition.Min_partition_nv in
  Alcotest.(check bool)
    (Printf.sprintf "p1 (%d) >= p2 (%d) >= p3 (%d) > nv (%d)" p1 p2 p3 nv)
    true
    (p1 >= p2 && p2 >= p3 && p3 > nv);
  (* nv has exactly the single final voter per output bit *)
  Alcotest.(check int) "nv voters = output width" 8 nv;
  (* p3 = register voters (8 bits x 3 domains) + output voters *)
  Alcotest.(check int) "p3 voters" ((8 * 3) + 8) p3

let test_domains_assigned () =
  let base = build_design () in
  let tmr = Partition.protect base Partition.Medium_partition in
  let counts = Array.make 3 0 in
  let unassigned = ref 0 in
  Netlist.iter_cells tmr (fun c ->
      match Netlist.kind tmr c with
      | Netlist.Input | Netlist.Ff _ | Netlist.Not | Netlist.And2
      | Netlist.Or2 | Netlist.Xor2 | Netlist.Mux2 | Netlist.Lut _ ->
          let d = Netlist.domain tmr c in
          if d >= 0 then counts.(d) <- counts.(d) + 1 else incr unassigned
      | Netlist.Maj3 | Netlist.Output | Netlist.Const _ -> ());
  Alcotest.(check bool) "domains balanced" true
    (counts.(0) = counts.(1) && counts.(1) = counts.(2));
  Alcotest.(check int) "all logic in a domain" 0 !unassigned

let test_rejects_double_triplication () =
  let base = build_design () in
  let tmr = Partition.protect base Partition.Min_partition in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Partition.protect tmr Partition.Min_partition);
       false
     with Invalid_argument _ -> true)

let test_redundant_port_names () =
  Alcotest.(check string) "naming" "x~2" (Tmr.redundant_port "x" 2);
  let base = build_design () in
  let tmr = Partition.protect base Partition.Min_partition in
  let names = List.map fst (Netlist.input_ports tmr) in
  Alcotest.(check (list string)) "triplicated ports"
    [ "a~0"; "a~1"; "a~2" ] names;
  Alcotest.(check (list string)) "output port kept" [ "y" ]
    (List.map fst (Netlist.output_ports tmr))

let test_boundary_cells () =
  (* comp "x" -> comp "y": only the boundary gate of "x" is a barrier *)
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  Netlist.set_comp nl "x";
  let inner = Netlist.add_cell nl Netlist.Not ~fanins:[| a |] in
  let edge = Netlist.add_cell nl Netlist.Not ~fanins:[| inner |] in
  Netlist.set_comp nl "y";
  let consumer = Netlist.add_cell nl Netlist.Not ~fanins:[| edge |] in
  Netlist.set_comp nl "";
  let o = Netlist.add_cell nl Netlist.Output ~fanins:[| consumer |] in
  Netlist.add_output_port nl "o" [| o |];
  let b = Partition.boundary_cells ~group_of:Partition.component_group nl in
  Alcotest.(check bool) "inner not boundary" false b.(inner);
  Alcotest.(check bool) "edge is boundary" true b.(edge);
  Alcotest.(check bool) "consumer is boundary (feeds output comp)" true
    b.(consumer)

let test_voters_are_flagged_and_majority () =
  let base = build_design () in
  let tmr = Partition.protect base Partition.Max_partition in
  let sound = ref true in
  Netlist.iter_cells tmr (fun c ->
      if Netlist.is_voter tmr c then
        match Netlist.kind tmr c with
        | Netlist.Maj3 -> ()
        | _ -> sound := false);
  Alcotest.(check bool) "every voter is maj3" true !sound

let test_tmr_masks_single_domain_fault () =
  (* Force a stuck-at on one domain's copy of a net: outputs must stay
     correct. *)
  let base = build_design () in
  let tmr = Partition.protect base Partition.Min_partition in
  let stimulus = [ 3; -5; 17; 0; 9; -1 ] in
  let expected = run_plain base stimulus in
  (* sabotage: find a domain-0 register and hold it via set_ff each cycle *)
  let victim = ref (-1) in
  Netlist.iter_cells tmr (fun c ->
      match Netlist.kind tmr c with
      | Netlist.Ff _ when Netlist.domain tmr c = 0 && !victim < 0 -> victim := c
      | _ -> ());
  let sim = Netsim.create tmr in
  Netsim.reset sim;
  let got =
    List.map
      (fun v ->
        List.iter
          (fun d -> Netsim.set_input sim (Tmr.redundant_port "a" d) v)
          [ 0; 1; 2 ];
        Netsim.set_ff sim !victim Logic.One;
        Netsim.eval sim;
        Netsim.set_ff sim !victim Logic.One;
        Netsim.clock sim;
        Netsim.eval sim;
        Netsim.output_int sim "y")
      stimulus
  in
  (* note: run_plain samples post-step; replicate that with eval after clock *)
  Alcotest.(check (list (option int))) "single-domain stuck-at masked"
    expected got

let test_equiv_passes_valid_tmr () =
  let base = build_design () in
  List.iter
    (fun strategy ->
      let tmr = Partition.protect base strategy in
      match Tmr_core.Equiv.check_tmr ~cycles:64 ~reference:base ~tmr () with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "%s: mismatch at cycle %d on %s (expected %s, got %s)"
            (Partition.name strategy) m.Tmr_core.Equiv.cycle
            m.Tmr_core.Equiv.port m.Tmr_core.Equiv.expected
            m.Tmr_core.Equiv.got)
    strategies

let test_equiv_catches_sabotage () =
  let base = build_design () in
  let tmr = Partition.protect base Partition.Min_partition in
  (* sabotage: break domain 2 AND domain 1 of the same signal — the vote
     can no longer mask it *)
  let broken = ref 0 in
  Netlist.iter_cells tmr (fun c ->
      if !broken < 2 then
        match Netlist.kind tmr c with
        | Netlist.Maj3 when Netlist.is_voter tmr c && Netlist.domain tmr c >= 1
          ->
            let f = Netlist.fanins tmr c in
            Netlist.set_fanin tmr c 0 f.(1);
            (* now a duplicate input: still majority-shaped but the checker
               does not care; instead corrupt harder by swapping in a
               constant *)
            incr broken
        | _ -> ());
  (* stronger sabotage: invert one domain-0 AND one domain-1 register D *)
  let inverted = ref 0 in
  Netlist.iter_cells tmr (fun c ->
      if !inverted < 2 then
        match Netlist.kind tmr c with
        | Netlist.Ff _ when Netlist.domain tmr c = !inverted ->
            let d = (Netlist.fanins tmr c).(0) in
            let inv =
              Netlist.add_cell tmr ~domain:(Netlist.domain tmr c) Netlist.Not
                ~fanins:[| d |]
            in
            Netlist.set_fanin tmr c 0 inv;
            incr inverted
        | _ -> ());
  match Tmr_core.Equiv.check_tmr ~cycles:64 ~reference:base ~tmr () with
  | Ok () -> Alcotest.fail "sabotaged TMR accepted"
  | Error _ -> ()

let test_equiv_same_ports_techmap () =
  let base = build_design () in
  let mapped = (Tmr_techmap.Techmap.run base).Tmr_techmap.Techmap.mapped in
  match
    Tmr_core.Equiv.check_same_ports ~cycles:64 ~reference:base
      ~candidate:mapped ()
  with
  | Ok () -> ()
  | Error m -> Alcotest.failf "techmap mismatch on %s" m.Tmr_core.Equiv.port

let () =
  Alcotest.run "tmr_core"
    [
      ( "tmr",
        [
          QCheck_alcotest.to_alcotest qcheck_tmr_equivalence;
          Alcotest.test_case "check passes for every strategy" `Quick
            test_check_passes_all_strategies;
          Alcotest.test_case "voter counts ordered by partition" `Quick
            test_voter_counts;
          Alcotest.test_case "domains balanced and total" `Quick
            test_domains_assigned;
          Alcotest.test_case "double triplication rejected" `Quick
            test_rejects_double_triplication;
          Alcotest.test_case "port naming" `Quick test_redundant_port_names;
          Alcotest.test_case "voters flagged and majority" `Quick
            test_voters_are_flagged_and_majority;
          Alcotest.test_case "single-domain fault masked" `Quick
            test_tmr_masks_single_domain_fault;
        ] );
      ( "partition",
        [ Alcotest.test_case "boundary cells" `Quick test_boundary_cells ] );
      ( "equiv",
        [
          Alcotest.test_case "checker passes valid TMR" `Quick
            test_equiv_passes_valid_tmr;
          Alcotest.test_case "checker catches sabotage" `Quick
            test_equiv_catches_sabotage;
          Alcotest.test_case "same-port mode validates techmap" `Quick
            test_equiv_same_ports_techmap;
        ] );
    ]
