module Logic = Tmr_logic.Logic
module Srand = Tmr_logic.Srand
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Netsim = Tmr_netlist.Netsim
module Arch = Tmr_arch.Arch
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Impl = Tmr_pnr.Impl
module Extract = Tmr_fabric.Extract
module Fsim = Tmr_fabric.Fsim

(* The device is expensive to build; share one per test binary. *)
let dev = lazy (Device.build Arch.small)
let db = lazy (Bitdb.build (Lazy.force dev))

let build_datapath () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:6 in
  let b = Word.input nl "b" ~width:6 in
  let s = Word.add nl a b in
  let p = Word.mul_const nl s (-3) ~width:6 in
  let r = Word.reg nl p in
  Word.output nl "r" r;
  nl

let implement nl =
  Impl.implement_exn ~seed:5 (Lazy.force dev) (Lazy.force db) nl

(* Drive the fabric simulator with integer stimulus on port "a"/"b" and
   read port "r", mirroring Netsim semantics. *)
let fabric_run impl stimulus =
  let width_out =
    Array.length (Netlist.find_output_port impl.Impl.mapped "r")
  in
  let out_wires = Array.init width_out (Impl.output_pad_wire impl "r") in
  let in_wires port w =
    Array.init w (Impl.input_pad_wire impl port)
  in
  let a_wires = in_wires "a" 6 and b_wires = in_wires "b" 6 in
  let ex =
    Extract.create (Lazy.force dev) (Lazy.force db)
      (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
  in
  let sim = Fsim.build ex ~watch_outputs:out_wires in
  Fsim.reset sim;
  List.map
    (fun (a, b) ->
      Array.iteri
        (fun i w -> Fsim.set_pad sim w (Logic.of_bool ((a asr i) land 1 = 1)))
        a_wires;
      Array.iteri
        (fun i w -> Fsim.set_pad sim w (Logic.of_bool ((b asr i) land 1 = 1)))
        b_wires;
      Fsim.step sim;
      let bits = Array.map (fun w -> Fsim.read sim w) out_wires in
      let rec collect i acc =
        if i >= Array.length bits then Some acc
        else
          match bits.(i) with
          | Logic.X -> None
          | Logic.One -> collect (i + 1) (acc lor (1 lsl i))
          | Logic.Zero -> collect (i + 1) acc
      in
      match collect 0 0 with
      | None -> None
      | Some v ->
          if v land (1 lsl (Array.length bits - 1)) <> 0 then
            Some (v - (1 lsl Array.length bits))
          else Some v)
    stimulus

let netsim_run nl stimulus =
  let sim = Netsim.create nl in
  Netsim.reset sim;
  List.map
    (fun (a, b) ->
      Netsim.set_input sim "a" a;
      Netsim.set_input sim "b" b;
      Netsim.step sim;
      Netsim.output_int sim "r")
    stimulus

let test_fabric_matches_netsim () =
  let nl = build_datapath () in
  let impl = implement nl in
  let rng = Srand.create 99 in
  let stimulus =
    List.init 24 (fun _ -> (Srand.int rng 64 - 32, Srand.int rng 64 - 32))
  in
  let golden = netsim_run impl.Impl.mapped stimulus in
  let fabric = fabric_run impl stimulus in
  Alcotest.(check (list (option int))) "fabric == netlist" golden fabric

let test_fabric_no_loops_in_golden () =
  let nl = build_datapath () in
  let impl = implement nl in
  let out_wires =
    Array.init 6 (Impl.output_pad_wire impl "r")
  in
  let ex =
    Extract.create (Lazy.force dev) (Lazy.force db)
      (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
  in
  let sim = Fsim.build ex ~watch_outputs:out_wires in
  Alcotest.(check bool) "golden config has no comb loop" false
    (Fsim.has_comb_loop sim)

let test_open_fault_breaks_output () =
  (* Turning OFF a pip of a routed net must corrupt (X) or change some
     output at some point, or at least never crash. *)
  let nl = build_datapath () in
  let impl = implement nl in
  let bs = Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream in
  let ex = Extract.create (Lazy.force dev) (Lazy.force db) bs in
  (* pick an ON routing bit: first pip of the widest net *)
  let pip =
    let np = impl.Impl.route.Tmr_pnr.Route.net_pips in
    let rec find i =
      if i >= Array.length np then Alcotest.fail "no routed pips"
      else if Array.length np.(i) > 0 then np.(i).(0)
      else find (i + 1)
    in
    find 0
  in
  let addr = Bitdb.pip_bit (Lazy.force db) pip in
  Extract.apply_bit_flip ex addr;
  let out_wires = Array.init 6 (Impl.output_pad_wire impl "r") in
  let sim = Fsim.build ex ~watch_outputs:out_wires in
  Fsim.reset sim;
  Fsim.step sim;
  (* just exercising: the sim must be buildable and steppable with the fault *)
  Alcotest.(check bool) "sim has nodes" true (Fsim.num_nodes sim > 0);
  (* flip back: involution restores the golden image *)
  Extract.apply_bit_flip ex addr;
  Alcotest.(check (list int)) "bitstream restored" []
    (Bitstream.diff bs impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)

let test_lut_fault_changes_function () =
  let nl = build_datapath () in
  let impl = implement nl in
  let stimulus = List.init 12 (fun i -> ((i * 5) mod 31 - 15, (i * 7) mod 31 - 15)) in
  let golden = netsim_run impl.Impl.mapped stimulus in
  (* flip one LUT bit of the first used bel *)
  let bel = impl.Impl.place.Tmr_pnr.Place.site_bel.(0) in
  let addr = Bitdb.lut_bit (Lazy.force db) ~bel ~idx:5 in
  let bs = Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream in
  let ex = Extract.create (Lazy.force dev) (Lazy.force db) bs in
  Extract.apply_bit_flip ex addr;
  let out_wires = Array.init 6 (Impl.output_pad_wire impl "r") in
  let sim = Fsim.build ex ~watch_outputs:out_wires in
  Fsim.reset sim;
  let faulty =
    List.map
      (fun (a, b) ->
        Array.iteri
          (fun i w ->
            Fsim.set_pad sim
              (Impl.input_pad_wire impl "a" i)
              (Logic.of_bool ((a asr i) land 1 = 1));
            ignore w)
          (Array.make 6 0);
        Array.iteri
          (fun i w ->
            Fsim.set_pad sim
              (Impl.input_pad_wire impl "b" i)
              (Logic.of_bool ((b asr i) land 1 = 1));
            ignore w)
          (Array.make 6 0);
        Fsim.step sim;
        let bits = Array.init 6 (fun i -> Fsim.read sim out_wires.(i)) in
        Array.to_list (Array.map Logic.to_char bits))
      stimulus
  in
  (* The corrupted LUT must disagree with golden on at least one vector
     (idx 5 of a used bel's table is exercised by this stimulus with very
     high probability; if not, the test would be vacuous, so assert). *)
  let golden_chars =
    List.map
      (function
        | Some v ->
            List.init 6 (fun i ->
                if (v asr i) land 1 = 1 then '1' else '0')
        | None -> List.init 6 (fun _ -> 'X'))
      golden
  in
  Alcotest.(check bool) "fault visible" true (faulty <> golden_chars)

(* Run the fabric through the stimulus and compare against golden; returns
   true when every cycle matches. *)
let matches_golden impl ex stimulus =
  let out_wires = Array.init 6 (Impl.output_pad_wire impl "r") in
  let sim = Fsim.build ex ~watch_outputs:out_wires in
  Fsim.reset sim;
  let golden = netsim_run impl.Impl.mapped stimulus in
  List.for_all2
    (fun (a, b) expected ->
      Array.iteri
        (fun i w ->
          Fsim.set_pad sim (Impl.input_pad_wire impl "a" i)
            (Logic.of_bool ((a asr i) land 1 = 1));
          ignore w)
        (Array.make 6 0);
      Array.iteri
        (fun i w ->
          Fsim.set_pad sim (Impl.input_pad_wire impl "b" i)
            (Logic.of_bool ((b asr i) land 1 = 1));
          ignore w)
        (Array.make 6 0);
      Fsim.step sim;
      let bits = Array.map (fun w -> Fsim.read sim w) out_wires in
      let rec collect i acc =
        if i >= Array.length bits then Some acc
        else
          match bits.(i) with
          | Logic.X -> None
          | Logic.One -> collect (i + 1) (acc lor (1 lsl i))
          | Logic.Zero -> collect (i + 1) acc
      in
      let v =
        match collect 0 0 with
        | None -> None
        | Some v ->
            if v land (1 lsl 5) <> 0 then Some (v - 64) else Some v
      in
      v = expected)
    stimulus golden

let fresh_extract impl =
  Extract.create (Lazy.force dev) (Lazy.force db)
    (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)

let stimulus_of_seed seed =
  let rng = Srand.create seed in
  List.init 16 (fun _ -> (Srand.int rng 64 - 32, Srand.int rng 64 - 32))

let test_ce_freeze_corrupts () =
  let impl = implement (build_datapath ()) in
  (* find a registered site's bel and freeze its clock enable *)
  let bel = ref (-1) in
  Array.iteri
    (fun s site ->
      if site.Tmr_pnr.Pack.registered && !bel < 0 then
        bel := impl.Impl.place.Tmr_pnr.Place.site_bel.(s))
    impl.Impl.pack.Tmr_pnr.Pack.sites;
  Alcotest.(check bool) "found registered bel" true (!bel >= 0);
  let ex = fresh_extract impl in
  Extract.apply_bit_flip ex (Bitdb.ce_inv_bit (Lazy.force db) ~bel:!bel);
  Alcotest.(check bool) "frozen register corrupts outputs" false
    (matches_golden impl ex (stimulus_of_seed 31))

let test_in_inv_corrupts () =
  let impl = implement (build_datapath ()) in
  (* invert a used input pin of some used site *)
  let target = ref None in
  Array.iteri
    (fun s site ->
      if !target = None then
        Array.iteri
          (fun j p ->
            if p >= 0 && !target = None then
              target := Some (impl.Impl.place.Tmr_pnr.Place.site_bel.(s), j))
          site.Tmr_pnr.Pack.pins)
    impl.Impl.pack.Tmr_pnr.Pack.sites;
  match !target with
  | None -> Alcotest.fail "no used pin"
  | Some (bel, pin) ->
      let ex = fresh_extract impl in
      Extract.apply_bit_flip ex (Bitdb.in_inv_bit (Lazy.force db) ~bel ~pin);
      Alcotest.(check bool) "inverted pin corrupts outputs" false
        (matches_golden impl ex (stimulus_of_seed 32))

let test_pad_disable_corrupts () =
  let impl = implement (build_datapath ()) in
  let cell = (Tmr_netlist.Netlist.find_input_port impl.Impl.mapped "a").(0) in
  let pad = impl.Impl.place.Tmr_pnr.Place.pad_of_cell.(cell) in
  let ex = fresh_extract impl in
  Extract.apply_bit_flip ex (Bitdb.pad_enable_bit (Lazy.force db) ~pad);
  Alcotest.(check bool) "disabled input pad corrupts outputs" false
    (matches_golden impl ex (stimulus_of_seed 33))

let qcheck_flip_involution =
  QCheck.Test.make ~count:40
    ~name:"double flip restores golden behaviour (any DUT bit)"
    (QCheck.make QCheck.Gen.int)
    (fun salt ->
      let impl = implement (build_datapath ()) in
      let bits = impl.Impl.bitgen.Tmr_pnr.Bitgen.dut_bits in
      let bit = bits.(abs salt mod Array.length bits) in
      let ex = fresh_extract impl in
      Extract.apply_bit_flip ex bit;
      Extract.apply_bit_flip ex bit;
      matches_golden impl ex (stimulus_of_seed 34))

let test_congestion_report () =
  let impl = implement (build_datapath ()) in
  let cong =
    Tmr_pnr.Congestion.analyze (Lazy.force dev) impl.Impl.route
      impl.Impl.mapped impl.Impl.pack
  in
  Alcotest.(check bool) "wirelength positive" true
    (cong.Tmr_pnr.Congestion.total_wirelength > 0);
  Alcotest.(check bool) "peak utilization sane" true
    (cong.Tmr_pnr.Congestion.max_utilization > 0.0
    && cong.Tmr_pnr.Congestion.max_utilization <= 1.0);
  let hm = Tmr_pnr.Congestion.heatmap cong in
  let p = (Lazy.force dev).Tmr_arch.Device.params in
  Alcotest.(check int) "heatmap size"
    (p.Tmr_arch.Arch.rows * (p.Tmr_arch.Arch.cols + 1))
    (String.length hm);
  Alcotest.(check bool) "summary mentions wirelength" true
    (String.length (Tmr_pnr.Congestion.summary cong) > 0)

let () =
  Alcotest.run "tmr_fabric"
    [
      ( "fabric",
        [
          Alcotest.test_case "fabric sim equals netlist sim (golden)" `Quick
            test_fabric_matches_netsim;
          Alcotest.test_case "no comb loops in golden config" `Quick
            test_fabric_no_loops_in_golden;
          Alcotest.test_case "open fault: sim robust + flip is involution"
            `Quick test_open_fault_breaks_output;
          Alcotest.test_case "lut fault changes function" `Quick
            test_lut_fault_changes_function;
        ] );
      ( "fault-semantics",
        [
          Alcotest.test_case "clock-enable freeze corrupts" `Quick
            test_ce_freeze_corrupts;
          Alcotest.test_case "pin inversion corrupts" `Quick
            test_in_inv_corrupts;
          Alcotest.test_case "pad disable corrupts" `Quick
            test_pad_disable_corrupts;
          QCheck_alcotest.to_alcotest qcheck_flip_involution;
          Alcotest.test_case "congestion report" `Quick test_congestion_report;
        ] );
    ]
