module Arch = Tmr_arch.Arch
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Srand = Tmr_logic.Srand

let dev = lazy (Device.build Arch.small)
let db = lazy (Bitdb.build (Lazy.force dev))

let test_bitstream_basics () =
  let bs = Bitstream.create ~nbits:100 in
  Alcotest.(check int) "length" 100 (Bitstream.length bs);
  Alcotest.(check bool) "starts 0" false (Bitstream.get bs 42);
  Bitstream.set bs 42 true;
  Alcotest.(check bool) "set" true (Bitstream.get bs 42);
  Bitstream.flip bs 42;
  Alcotest.(check bool) "flip back" false (Bitstream.get bs 42);
  Bitstream.set bs 0 true;
  Bitstream.set bs 99 true;
  Alcotest.(check int) "popcount" 2 (Bitstream.popcount bs);
  let bs2 = Bitstream.copy bs in
  Bitstream.flip bs2 7;
  Alcotest.(check (list int)) "diff" [ 7 ] (Bitstream.diff bs bs2);
  Alcotest.check_raises "oob" (Invalid_argument "Bitstream: address 100 out of 100")
    (fun () -> ignore (Bitstream.get bs 100))

let qcheck_hex_roundtrip =
  QCheck.Test.make ~count:50 ~name:"bitstream hex roundtrip"
    (QCheck.make
       (QCheck.Gen.pair (QCheck.Gen.int_range 1 200)
          (QCheck.Gen.list_size (QCheck.Gen.return 30) (QCheck.Gen.int_bound 1000))))
    (fun (nbits, sets) ->
      let bs = Bitstream.create ~nbits in
      List.iter (fun v -> Bitstream.set bs (v mod nbits) true) sets;
      match Bitstream.of_hex ~nbits (Bitstream.to_hex bs) with
      | Ok bs2 -> Bitstream.diff bs bs2 = []
      | Error _ -> false)

let test_save_load () =
  let bs = Bitstream.create ~nbits:1000 in
  Bitstream.set bs 5 true;
  Bitstream.set bs 999 true;
  let path = Filename.temp_file "tmr" ".bits" in
  Bitstream.save bs path;
  (match Bitstream.load path with
  | Ok bs2 ->
      Alcotest.(check int) "size" 1000 (Bitstream.length bs2);
      Alcotest.(check (list int)) "same content" [] (Bitstream.diff bs bs2)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_hex_rejects_garbage () =
  (match Bitstream.of_hex ~nbits:16 "zz00" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad hex accepted");
  match Bitstream.of_hex ~nbits:16 "00" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short hex accepted"

let test_bitdb_reverse_lookups () =
  let d = Lazy.force dev and database = Lazy.force db in
  let rng = Srand.create 3 in
  for _ = 1 to 200 do
    let p = Srand.int rng d.Device.npips in
    (match Bitdb.resource database (Bitdb.pip_bit database p) with
    | Bitdb.Pip p' -> Alcotest.(check int) "pip roundtrip" p p'
    | _ -> Alcotest.fail "pip bit maps elsewhere");
    let b = Srand.int rng d.Device.nbels in
    (match Bitdb.resource database (Bitdb.lut_bit database ~bel:b ~idx:7) with
    | Bitdb.Lut_bit (b', 7) -> Alcotest.(check int) "lut roundtrip" b b'
    | _ -> Alcotest.fail "lut bit maps elsewhere");
    (match Bitdb.resource database (Bitdb.ff_init_bit database ~bel:b) with
    | Bitdb.Ff_init b' -> Alcotest.(check int) "ff roundtrip" b b'
    | _ -> Alcotest.fail "ff bit maps elsewhere");
    match Bitdb.resource database (Bitdb.in_inv_bit database ~bel:b ~pin:2) with
    | Bitdb.In_inv (b', 2) -> Alcotest.(check int) "inv roundtrip" b b'
    | _ -> Alcotest.fail "inv bit maps elsewhere"
  done

let test_bitdb_class_counts () =
  let database = Lazy.force db in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Bitdb.class_counts database) in
  Alcotest.(check int) "classes cover all bits" (Bitdb.num_bits database) total;
  let d = Lazy.force dev in
  let routing = List.assoc Bitdb.Class_routing (Bitdb.class_counts database) in
  Alcotest.(check int) "routing = pips" d.Device.npips routing;
  Alcotest.(check bool) "frames cover bits" true
    (Bitdb.num_frames database * Bitdb.frame_bits database >= Bitdb.num_bits database)

let test_device_geometry () =
  let d = Lazy.force dev in
  let p = d.Device.params in
  Alcotest.(check int) "bels" (Arch.num_bels p) d.Device.nbels;
  (* spans *)
  let count_kind k =
    Array.fold_left (fun acc wk -> if wk = k then acc + 1 else acc) 0 d.Device.wkind
  in
  Alcotest.(check int) "h singles"
    ((p.Arch.rows + 1) * p.Arch.cols * p.Arch.ch_singles)
    (count_kind Device.HSingle);
  Alcotest.(check int) "bel pins"
    (Arch.num_bels p * (p.Arch.lut_inputs + 1))
    (count_kind Device.BelIn + count_kind Device.BelOut);
  (* pip_other is an involution on endpoints *)
  let rng = Srand.create 8 in
  for _ = 1 to 100 do
    let pip = Srand.int rng d.Device.npips in
    let s = d.Device.pip_src.(pip) in
    Alcotest.(check int) "other(other(w))" s
      (Device.pip_other d pip (Device.pip_other d pip s))
  done;
  let ins = Device.input_pads d and outs = Device.output_pads d in
  Alcotest.(check int) "pads split evenly" (Array.length ins) (Array.length outs);
  Alcotest.(check int) "all pads" d.Device.npads
    (Array.length ins + Array.length outs)

let test_scaled_params () =
  let p = Arch.scaled Arch.small ~rows:4 ~cols:5 in
  Alcotest.(check int) "rows" 4 p.Arch.rows;
  Alcotest.(check int) "cols" 5 p.Arch.cols;
  Alcotest.(check int) "channels preserved" Arch.small.Arch.ch_singles
    p.Arch.ch_singles;
  let d = Device.build p in
  match Device.check_invariants d with
  | Ok () -> ()
  | Error es -> Alcotest.fail (List.hd es)

let () =
  Alcotest.run "tmr_arch"
    [
      ( "bitstream",
        [
          Alcotest.test_case "basics" `Quick test_bitstream_basics;
          QCheck_alcotest.to_alcotest qcheck_hex_roundtrip;
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "bad hex rejected" `Quick test_hex_rejects_garbage;
        ] );
      ( "bitdb",
        [
          Alcotest.test_case "reverse lookups" `Quick test_bitdb_reverse_lookups;
          Alcotest.test_case "class counts" `Quick test_bitdb_class_counts;
        ] );
      ( "device",
        [
          Alcotest.test_case "geometry" `Quick test_device_geometry;
          Alcotest.test_case "scaled params" `Quick test_scaled_params;
        ] );
    ]
