module Logic = Tmr_logic.Logic
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Arch = Tmr_arch.Arch
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Pack = Tmr_pnr.Pack
module Place = Tmr_pnr.Place
module Route = Tmr_pnr.Route
module Impl = Tmr_pnr.Impl
module Techmap = Tmr_techmap.Techmap

let dev = lazy (Device.build Arch.small)
let db = lazy (Bitdb.build (Lazy.force dev))

let build_datapath () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:6 in
  let b = Word.input nl "b" ~width:6 in
  let s = Word.add nl a b in
  let r = Word.reg nl s in
  let p = Word.mul_const nl r 5 ~width:6 in
  Word.output nl "y" p;
  nl

let mapped_datapath () = (Techmap.run (build_datapath ())).Techmap.mapped

let test_device_invariants () =
  match Device.check_invariants (Lazy.force dev) with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_pack_pairs_ff_with_private_lut () =
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let b = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let lut =
    Netlist.add_cell nl (Netlist.Lut { arity = 2; table = 0b1000 })
      ~fanins:[| a; b |]
  in
  let ff = Netlist.add_cell nl (Netlist.Ff Logic.Zero) ~fanins:[| lut |] in
  let o = Netlist.add_cell nl Netlist.Output ~fanins:[| ff |] in
  Netlist.add_input_port nl "a" [| a |];
  Netlist.add_input_port nl "b" [| b |];
  Netlist.add_output_port nl "y" [| o |];
  let pack = Pack.run nl in
  Alcotest.(check int) "one site" 1 (Array.length pack.Pack.sites);
  let site = pack.Pack.sites.(0) in
  Alcotest.(check bool) "lut present" true (site.Pack.lut = Some lut);
  Alcotest.(check bool) "ff present" true (site.Pack.ff = Some ff);
  Alcotest.(check bool) "registered" true site.Pack.registered

let test_pack_route_through_ff () =
  (* FF driven by an input (not a LUT) needs an identity route-through. *)
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let ff = Netlist.add_cell nl (Netlist.Ff Logic.Zero) ~fanins:[| a |] in
  let o = Netlist.add_cell nl Netlist.Output ~fanins:[| ff |] in
  Netlist.add_input_port nl "a" [| a |];
  Netlist.add_output_port nl "y" [| o |];
  let pack = Pack.run nl in
  let site = pack.Pack.sites.(0) in
  Alcotest.(check bool) "no lut cell" true (site.Pack.lut = None);
  Alcotest.(check int) "identity table" Pack.identity_table site.Pack.table;
  Alcotest.(check int) "pin0 is input" a site.Pack.pins.(0)

let test_pack_drops_dead_logic () =
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let dead =
    Netlist.add_cell nl (Netlist.Lut { arity = 1; table = 0b01 }) ~fanins:[| a |]
  in
  let live =
    Netlist.add_cell nl (Netlist.Lut { arity = 1; table = 0b10 }) ~fanins:[| a |]
  in
  let o = Netlist.add_cell nl Netlist.Output ~fanins:[| live |] in
  Netlist.add_input_port nl "a" [| a |];
  Netlist.add_output_port nl "y" [| o |];
  let pack = Pack.run nl in
  Alcotest.(check int) "only live site" 1 (Array.length pack.Pack.sites);
  Alcotest.(check int) "dead unmapped" (-1) pack.Pack.site_of_cell.(dead)

let test_place_legal () =
  let nl = mapped_datapath () in
  let pack = Pack.run nl in
  let place = Place.run ~seed:3 (Lazy.force dev) pack nl in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun bel ->
      Alcotest.(check bool) "bel in range" true
        (bel >= 0 && bel < (Lazy.force dev).Device.nbels);
      Alcotest.(check bool) "bel unique" false (Hashtbl.mem seen bel);
      Hashtbl.add seen bel ())
    place.Place.site_bel;
  (* every live port cell has a pad, all distinct *)
  let pads = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let pad = place.Place.pad_of_cell.(c) in
      Alcotest.(check bool) "pad assigned" true (pad >= 0);
      Alcotest.(check bool) "pad unique" false (Hashtbl.mem pads pad);
      Hashtbl.add pads pad ())
    (Array.append pack.Pack.live_inputs pack.Pack.live_outputs)

let test_route_no_overuse_and_connected () =
  let nl = mapped_datapath () in
  let pack = Pack.run nl in
  let d = Lazy.force dev in
  let place = Place.run ~seed:3 d pack nl in
  match Route.run d pack place with
  | Error e -> Alcotest.fail e
  | Ok route ->
      (* capacity: every wire used by at most one net *)
      let occ = Array.make d.Device.nwires 0 in
      Array.iter
        (fun wires -> Array.iter (fun w -> occ.(w) <- occ.(w) + 1) wires)
        route.Route.net_wires;
      Array.iteri
        (fun w n ->
          if n > 1 then
            Alcotest.failf "wire %s used by %d nets" (Device.describe_wire d w) n)
        occ;
      (* connectivity: walking tree pips from the source reaches all sinks *)
      Array.iteri
        (fun ni net ->
          let src = Route.driver_wire d pack place ni in
          let reach = Hashtbl.create 32 in
          Hashtbl.replace reach src ();
          let pips = route.Route.net_pips.(ni) in
          let changed = ref true in
          while !changed do
            changed := false;
            Array.iter
              (fun pipid ->
                let s = d.Device.pip_src.(pipid) and dd = d.Device.pip_dst.(pipid) in
                let spread a b =
                  if Hashtbl.mem reach a && not (Hashtbl.mem reach b) then begin
                    Hashtbl.replace reach b ();
                    changed := true
                  end
                in
                spread s dd;
                if d.Device.pip_bidir.(pipid) then spread dd s)
              pips
          done;
          List.iter
            (fun sink ->
              let w = Route.sink_wire d pack place sink in
              if not (Hashtbl.mem reach w) then
                Alcotest.failf "net %d sink %s unreachable" ni
                  (Device.describe_wire d w))
            net.Pack.sinks)
        pack.Pack.nets

let test_impl_end_to_end () =
  let nl = build_datapath () in
  let impl = Impl.implement_exn ~seed:5 (Lazy.force dev) (Lazy.force db) nl in
  Alcotest.(check bool) "has slices" true (Impl.used_slices impl > 0);
  Alcotest.(check bool) "mhz positive" true
    (impl.Impl.timing.Tmr_pnr.Timing.mhz > 0.0);
  let bits = impl.Impl.bitgen.Tmr_pnr.Bitgen.dut_bits in
  Alcotest.(check bool) "dut bits non-empty" true (Array.length bits > 0);
  (* sorted unique, in range *)
  let ok = ref true in
  Array.iteri
    (fun i b ->
      if i > 0 && bits.(i - 1) >= b then ok := false;
      if b < 0 || b >= Bitdb.num_bits (Lazy.force db) then ok := false)
    bits;
  Alcotest.(check bool) "dut bits sorted/unique/in-range" true !ok;
  (* every programmed routing bit is in the DUT list *)
  let dut = Hashtbl.create 1024 in
  Array.iter (fun b -> Hashtbl.replace dut b ()) bits;
  for a = 0 to Bitdb.num_bits (Lazy.force db) - 1 do
    if Bitstream.get impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream a then
      match Bitdb.resource (Lazy.force db) a with
      | Bitdb.Pip _ ->
          Alcotest.(check bool) "on pip in dut list" true (Hashtbl.mem dut a)
      | _ -> ()
  done

let test_timing_voters_slow_designs () =
  (* Adding voter stages must not make the design faster. *)
  let params = Tmr_filter.Fir.tiny_params in
  let mk strategy =
    let nl = Tmr_filter.Designs.build ~params strategy in
    let impl = Impl.implement_exn ~seed:5 (Lazy.force dev) (Lazy.force db) nl in
    impl.Impl.timing.Tmr_pnr.Timing.logic_levels
  in
  let p1 = mk Tmr_core.Partition.Max_partition in
  let p3 = mk Tmr_core.Partition.Min_partition in
  Alcotest.(check bool)
    (Printf.sprintf "p1 levels (%d) >= p3 levels (%d)" p1 p3)
    true (p1 >= p3)

let test_place_domains_floorplan () =
  let params = Tmr_filter.Fir.tiny_params in
  let nl = Tmr_filter.Designs.build ~params Tmr_core.Partition.Min_partition_nv in
  let { Techmap.mapped; _ } = Techmap.run nl in
  let pack = Pack.run mapped in
  let d = Lazy.force dev in
  let place = Place.run ~seed:3 ~floorplan:`Domains d pack mapped in
  let cols = d.Device.params.Arch.cols in
  let third = cols / 3 in
  let violations = ref 0 in
  Array.iteri
    (fun s bel ->
      let site = pack.Pack.sites.(s) in
      let dom =
        match site.Pack.lut, site.Pack.ff with
        | Some c, _ | None, Some c -> Netlist.domain mapped c
        | None, None -> -1
      in
      if dom >= 0 then begin
        let c = d.Device.bel_col.(bel) in
        let lo = dom * third in
        let hi = if dom = 2 then cols - 1 else lo + third - 1 in
        if c < lo || c > hi then incr violations
      end)
    place.Place.site_bel;
  Alcotest.(check int) "domain region violations" 0 !violations

let () =
  Alcotest.run "tmr_pnr"
    [
      ( "device",
        [ Alcotest.test_case "invariants" `Quick test_device_invariants ] );
      ( "pack",
        [
          Alcotest.test_case "pairs ff with private lut" `Quick
            test_pack_pairs_ff_with_private_lut;
          Alcotest.test_case "route-through ff" `Quick test_pack_route_through_ff;
          Alcotest.test_case "drops dead logic" `Quick test_pack_drops_dead_logic;
        ] );
      ( "place",
        [
          Alcotest.test_case "legal placement" `Quick test_place_legal;
          Alcotest.test_case "domains floorplan respected" `Quick
            test_place_domains_floorplan;
        ] );
      ( "route",
        [
          Alcotest.test_case "no overuse; all sinks connected" `Quick
            test_route_no_overuse_and_connected;
        ] );
      ( "impl",
        [
          Alcotest.test_case "end to end" `Quick test_impl_end_to_end;
          Alcotest.test_case "voters add logic levels" `Quick
            test_timing_voters_slow_designs;
        ] );
    ]
