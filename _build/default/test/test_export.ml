module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Netsim = Tmr_netlist.Netsim
module Export = Tmr_netlist.Export
module Partition = Tmr_core.Partition

let build_design () =
  let nl = Netlist.create () in
  Netlist.set_comp nl "weird comp/with spaces";
  let a = Word.input nl "a" ~width:5 in
  let b = Word.input nl "b with space" ~width:5 in
  Netlist.set_comp nl "dp/mul";
  let p = Word.mul_const nl a 6 ~width:8 in
  Netlist.set_comp nl "dp/add";
  let s = Word.add nl p (Word.resize nl b ~width:8) in
  Netlist.set_comp nl "dp/reg";
  let r = Word.reg nl ~init:3 s in
  Netlist.set_comp nl "";
  Word.output nl "y" r;
  nl

let simulate nl stimulus =
  let sim = Netsim.create nl in
  Netsim.reset sim;
  List.map
    (fun (a, b) ->
      Netsim.set_input sim "a" a;
      Netsim.set_input sim "b with space" b;
      Netsim.step sim;
      Netsim.output_int sim "y")
    stimulus

let test_roundtrip_structure () =
  let nl = build_design () in
  let text = Export.to_string nl in
  let nl2 = Export.of_string_exn text in
  Alcotest.(check string) "stable fixpoint" text (Export.to_string nl2);
  Alcotest.(check int) "same size" (Netlist.num_cells nl) (Netlist.num_cells nl2);
  Alcotest.(check (list string)) "ports"
    (List.map fst (Netlist.input_ports nl))
    (List.map fst (Netlist.input_ports nl2))

let test_roundtrip_behaviour () =
  let nl = build_design () in
  let nl2 = Export.of_string_exn (Export.to_string nl) in
  let stim = [ (3, 7); (-10, 2); (15, -15); (0, 0) ] in
  Alcotest.(check (list (option int))) "same outputs" (simulate nl stim)
    (simulate nl2 stim)

let test_roundtrip_tmr_attributes () =
  let base = build_design () in
  let tmr = Partition.protect base Partition.Max_partition in
  let tmr2 = Export.of_string_exn (Export.to_string tmr) in
  Tmr_netlist.Check.run_exn tmr2;
  let voters nl =
    Netlist.fold_cells nl ~init:0 ~f:(fun acc c ->
        if Netlist.is_voter nl c then acc + 1 else acc)
  in
  Alcotest.(check int) "voters preserved" (voters tmr) (voters tmr2);
  let domain_sum nl =
    Netlist.fold_cells nl ~init:0 ~f:(fun acc c -> acc + Netlist.domain nl c)
  in
  Alcotest.(check int) "domains preserved" (domain_sum tmr) (domain_sum tmr2)

let test_rejects_garbage () =
  (match Export.of_string "tmrnl 1\ncell 0 frobnicate" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad kind accepted");
  (match Export.of_string "tmrnl 1\ncell 1 input" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-dense ids accepted");
  (match Export.of_string "tmrnl 99" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad version accepted");
  match Export.of_string "tmrnl 1\ncell 0 not 5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling fanin accepted"

let () =
  Alcotest.run "tmr_export"
    [
      ( "export",
        [
          Alcotest.test_case "roundtrip structure" `Quick test_roundtrip_structure;
          Alcotest.test_case "roundtrip behaviour" `Quick test_roundtrip_behaviour;
          Alcotest.test_case "roundtrip TMR attributes" `Quick
            test_roundtrip_tmr_attributes;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
        ] );
    ]
