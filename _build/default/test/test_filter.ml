module Netlist = Tmr_netlist.Netlist
module Netsim = Tmr_netlist.Netsim
module Check = Tmr_netlist.Check
module Fir = Tmr_filter.Fir
module Golden = Tmr_filter.Golden
module Designs = Tmr_filter.Designs
module Partition = Tmr_core.Partition

let run_netlist params inputs =
  let nl = Fir.build params in
  let sim = Netsim.create nl in
  Netsim.reset sim;
  Array.map
    (fun x ->
      Netsim.set_input sim "x" x;
      Netsim.eval sim;
      let y = Netsim.output_int sim "y" in
      Netsim.clock sim;
      match y with
      | Some v -> v
      | None -> Alcotest.fail "filter output X")
    inputs

let signed_gen width =
  QCheck.Gen.map
    (fun v -> v - (1 lsl (width - 1)))
    (QCheck.Gen.int_bound ((1 lsl width) - 1))

let qcheck_netlist_matches_golden_tiny =
  QCheck.Test.make ~count:40 ~name:"tiny FIR netlist == golden model"
    (QCheck.make
       (QCheck.Gen.array_size (QCheck.Gen.return 12) (signed_gen 5)))
    (fun inputs ->
      run_netlist Fir.tiny_params inputs = Golden.run Fir.tiny_params inputs)

let test_paper_filter_matches_golden () =
  let inputs = Fir.stimulus ~cycles:30 ~seed:3 Fir.paper_params in
  Alcotest.(check (array int))
    "paper filter netlist == golden"
    (Golden.run Fir.paper_params inputs)
    (run_netlist Fir.paper_params inputs)

let test_impulse_response_is_coefficients () =
  let p = Fir.paper_params in
  let taps = Array.length p.Fir.coeffs in
  let inputs = Array.make (taps + 2) 0 in
  inputs.(0) <- 1;
  let out = Golden.run p inputs in
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "h[%d]" i) c out.(i))
    p.Fir.coeffs;
  Alcotest.(check int) "tail zero" 0 out.(taps)

let test_paper_structure () =
  let nl = Fir.build Fir.paper_params in
  Check.run_exn nl;
  (* 11 multipliers, 10 adders, 10 registers in the component labels *)
  let comps = Hashtbl.create 64 in
  Netlist.iter_cells nl (fun c -> Hashtbl.replace comps (Netlist.comp nl c) ());
  let count suffix =
    Hashtbl.fold
      (fun comp () acc ->
        let n = String.length comp and m = String.length suffix in
        if n >= m && String.sub comp (n - m) m = suffix then acc + 1 else acc)
      comps 0
  in
  (* the two x1 coefficients synthesize to plain wiring (no cells), so 9 of
     the paper's 11 multipliers materialize as logic *)
  Alcotest.(check int) "9 non-trivial multipliers" 9 (count "/mult");
  Alcotest.(check int) "10 adders" 10 (count "/add");
  Alcotest.(check int) "10 registers" 10 (count "/reg");
  (* 10 x 9-bit delay registers *)
  let ffs = (Tmr_netlist.Stats.compute nl).Tmr_netlist.Stats.ffs in
  Alcotest.(check int) "90 flip-flops" 90 ffs

let test_coefficients_symmetric () =
  let c = Fir.paper_params.Fir.coeffs in
  let n = Array.length c in
  Alcotest.(check int) "11 taps" 11 n;
  for i = 0 to n - 1 do
    Alcotest.(check int) "symmetric" c.(i) c.(n - 1 - i)
  done;
  Alcotest.(check (list int)) "paper values" [ 1; -1; -9; 6; 73; 120 ]
    (Array.to_list (Array.sub c 0 6))

let test_stimulus_deterministic_and_in_range () =
  let p = Fir.paper_params in
  let s1 = Fir.stimulus ~cycles:40 ~seed:9 p in
  let s2 = Fir.stimulus ~cycles:40 ~seed:9 p in
  Alcotest.(check (array int)) "deterministic" s1 s2;
  let amplitude = (1 lsl (p.Fir.input_width - 1)) - 1 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (v >= -amplitude && v <= amplitude))
    s1;
  let s3 = Fir.stimulus ~cycles:40 ~seed:10 p in
  Alcotest.(check bool) "seed changes tail" true (s1 <> s3)

let test_designs_build_and_check () =
  List.iter
    (fun strategy ->
      let nl = Designs.build ~params:Fir.tiny_params strategy in
      match Check.run nl with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s: %s" (Partition.name strategy) (List.hd es))
    Partition.all_paper_designs

let test_descriptions_distinct () =
  let ds = List.map Designs.description Partition.all_paper_designs in
  Alcotest.(check int) "all distinct" (List.length ds)
    (List.length (List.sort_uniq compare ds))

let () =
  Alcotest.run "tmr_filter"
    [
      ( "fir",
        [
          QCheck_alcotest.to_alcotest qcheck_netlist_matches_golden_tiny;
          Alcotest.test_case "paper filter matches golden" `Quick
            test_paper_filter_matches_golden;
          Alcotest.test_case "impulse response = coefficients" `Quick
            test_impulse_response_is_coefficients;
          Alcotest.test_case "paper structure (11/10/10)" `Quick
            test_paper_structure;
          Alcotest.test_case "coefficients symmetric" `Quick
            test_coefficients_symmetric;
          Alcotest.test_case "stimulus deterministic" `Quick
            test_stimulus_deterministic_and_in_range;
        ] );
      ( "designs",
        [
          Alcotest.test_case "all versions build and check" `Quick
            test_designs_build_and_check;
          Alcotest.test_case "descriptions distinct" `Quick
            test_descriptions_distinct;
        ] );
    ]
