module Logic = Tmr_logic.Logic
module Bitvec = Tmr_logic.Bitvec
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Levelize = Tmr_netlist.Levelize
module Netsim = Tmr_netlist.Netsim
module Check = Tmr_netlist.Check
module Stats = Tmr_netlist.Stats

let wrap width v =
  let m = 1 lsl width in
  let r = ((v mod m) + m) mod m in
  if r land (1 lsl (width - 1)) <> 0 then r - m else r

let signed_gen width =
  QCheck.Gen.map
    (fun v -> v - (1 lsl (width - 1)))
    (QCheck.Gen.int_bound ((1 lsl width) - 1))

(* Build a combinational two-input circuit, simulate it once, return the
   integer output. *)
let run2 ~width build a b =
  let nl = Netlist.create () in
  let wa = Word.input nl "a" ~width in
  let wb = Word.input nl "b" ~width in
  let wr = build nl wa wb in
  Word.output nl "r" wr;
  Check.run_exn nl;
  let sim = Netsim.create nl in
  Netsim.reset sim;
  Netsim.set_input sim "a" a;
  Netsim.set_input sim "b" b;
  Netsim.eval sim;
  match Netsim.output_int sim "r" with
  | Some v -> v
  | None -> Alcotest.fail "output is X"

let qcheck_add =
  QCheck.Test.make ~count:200 ~name:"word add matches ints"
    (QCheck.make (QCheck.Gen.pair (signed_gen 10) (signed_gen 10)))
    (fun (a, b) -> run2 ~width:10 Word.add a b = wrap 10 (a + b))

let qcheck_sub =
  QCheck.Test.make ~count:200 ~name:"word sub matches ints"
    (QCheck.make (QCheck.Gen.pair (signed_gen 10) (signed_gen 10)))
    (fun (a, b) -> run2 ~width:10 Word.sub a b = wrap 10 (a - b))

let qcheck_bitops =
  QCheck.Test.make ~count:100 ~name:"word and/or/xor/not match ints"
    (QCheck.make (QCheck.Gen.pair (signed_gen 8) (signed_gen 8)))
    (fun (a, b) ->
      run2 ~width:8 Word.bitand a b = wrap 8 (a land b)
      && run2 ~width:8 Word.bitor a b = wrap 8 (a lor b)
      && run2 ~width:8 Word.bitxor a b = wrap 8 (a lxor b)
      && run2 ~width:8 (fun nl x _ -> Word.bitnot nl x) a b = wrap 8 (lnot a))

let qcheck_mul =
  QCheck.Test.make ~count:100 ~name:"word signed multiplier is exact"
    (QCheck.make (QCheck.Gen.pair (signed_gen 6) (signed_gen 6)))
    (fun (a, b) -> run2 ~width:6 (fun nl x y -> Word.mul nl x y) a b = a * b)

let paper_coefficients = [ 1; -1; -9; 6; 73; 120 ]

let qcheck_mul_const =
  QCheck.Test.make ~count:200 ~name:"mul_const matches ints for paper coefficients"
    (QCheck.make (QCheck.Gen.pair (signed_gen 9) (QCheck.Gen.oneofl paper_coefficients)))
    (fun (a, c) ->
      run2 ~width:18
        (fun nl x _ -> Word.mul_const nl (Array.sub x 0 9) c ~width:18)
        a 0
      = wrap 18 (a * c))

let qcheck_mul_const_vs_general =
  (* cross-validation: the shift-and-add constant multiplier must agree
     with the general array multiplier *)
  QCheck.Test.make ~count:150 ~name:"mul_const agrees with general mul"
    (QCheck.make (QCheck.Gen.pair (signed_gen 7) (signed_gen 5)))
    (fun (a, c) ->
      let via_const =
        run2 ~width:12 (fun nl x _ -> Word.mul_const nl (Array.sub x 0 7) c ~width:12) a 0
      in
      let via_general =
        let nl = Netlist.create () in
        let wa = Word.input nl "a" ~width:7 in
        let wc = Word.const nl ~width:5 c in
        let product = Word.mul nl wa wc in
        Word.output nl "r" product;
        let sim = Netsim.create nl in
        Netsim.reset sim;
        Netsim.set_input sim "a" a;
        Netsim.eval sim;
        match Netsim.output_int sim "r" with
        | Some v -> wrap 12 v
        | None -> Alcotest.fail "mul output X"
      in
      via_const = via_general)

let build_datapath_for_level () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:4 in
  let b = Word.input nl "b" ~width:4 in
  let s = Word.add nl a b in
  let r = Word.reg nl s in
  let t = Word.bitxor nl r s in
  Word.output nl "r" t;
  nl

let test_levelize_order_respects_fanins () =
  let nl = build_datapath_for_level () in
  let lev = Levelize.run_exn nl in
  let pos = Array.make (Netlist.num_cells nl) (-1) in
  Array.iteri (fun i c -> pos.(c) <- i) lev.Levelize.order;
  let sound =
    Netlist.fold_cells nl ~init:true ~f:(fun acc c ->
        acc
        &&
        match Netlist.kind nl c with
        | Netlist.Ff _ | Netlist.Input | Netlist.Const _ -> true
        | Netlist.Output | Netlist.Not | Netlist.And2 | Netlist.Or2
        | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3 | Netlist.Lut _ ->
            Array.for_all (fun src -> pos.(src) < pos.(c)) (Netlist.fanins nl c))
  in
  Alcotest.(check bool) "drivers before readers" true sound;
  Alcotest.(check bool) "depth positive" true (lev.Levelize.depth > 0)

let test_netsim_undriven_input_is_x () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:2 in
  Word.output nl "o" (Word.bitnot nl a);
  let sim = Netsim.create nl in
  Netsim.reset sim;
  Netsim.eval sim;
  Alcotest.(check (option int)) "undriven -> X" None (Netsim.output_int sim "o");
  Netsim.set_input_bits sim "a" [| Logic.One; Logic.X |];
  Netsim.eval sim;
  let bits = Netsim.output_bits sim "o" in
  Alcotest.(check char) "defined bit inverts" '0' (Logic.to_char bits.(0));
  Alcotest.(check char) "x bit stays x" 'X' (Logic.to_char bits.(1))

let test_mul_const_zero () =
  Alcotest.(check int) "x * 0" 0
    (run2 ~width:12 (fun nl x _ -> Word.mul_const nl x 0 ~width:12) 123 0)

let test_mul_const_negative_pow2 () =
  Alcotest.(check int) "x * -8" (-136)
    (run2 ~width:12 (fun nl x _ -> Word.mul_const nl x (-8) ~width:12) 17 0)

let test_resize_sign_extend () =
  Alcotest.(check int) "-5 resized 9->18" (-5)
    (run2 ~width:18
       (fun nl x _ -> Word.resize nl (Array.sub x 0 9) ~width:18)
       (wrap 18 (-5)) 0)

let test_mux2 () =
  let nl = Netlist.create () in
  let sel = Word.input nl "sel" ~width:1 in
  let a = Word.input nl "a" ~width:4 in
  let b = Word.input nl "b" ~width:4 in
  Word.output nl "r" (Word.mux2 nl ~sel:sel.(0) a b);
  let sim = Netsim.create nl in
  Netsim.reset sim;
  Netsim.set_input sim "a" 3;
  Netsim.set_input sim "b" 5;
  Netsim.set_input sim "sel" 0;
  Netsim.eval sim;
  Alcotest.(check (option int)) "sel=0" (Some 3) (Netsim.output_int sim "r");
  Netsim.set_input sim "sel" 1;
  Netsim.eval sim;
  Alcotest.(check (option int)) "sel=1" (Some 5) (Netsim.output_int sim "r")

let test_eq () =
  (* The output is one bit wide, so a true result reads back as -1 in
     two's complement. *)
  let check_eq a b expected =
    let nl = Netlist.create () in
    let wa = Word.input nl "a" ~width:5 in
    let wb = Word.input nl "b" ~width:5 in
    Word.output nl "r" [| Word.eq nl wa wb |];
    let sim = Netsim.create nl in
    Netsim.reset sim;
    Netsim.set_input sim "a" a;
    Netsim.set_input sim "b" b;
    Netsim.eval sim;
    Alcotest.(check (option int))
      (Printf.sprintf "eq %d %d" a b)
      (Some expected) (Netsim.output_int sim "r")
  in
  check_eq 7 7 (-1);
  check_eq 7 9 0;
  check_eq 0 0 (-1)

let test_register_pipeline () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:8 in
  let r1 = Word.reg nl a in
  let r2 = Word.reg nl r1 in
  Word.output nl "r" r2;
  Check.run_exn nl;
  let sim = Netsim.create nl in
  Netsim.reset sim;
  let inputs = [ 5; -3; 100; 0; 42 ] in
  let outputs = ref [] in
  List.iter
    (fun v ->
      Netsim.set_input sim "a" v;
      Netsim.step sim;
      outputs := Netsim.output_int sim "r" :: !outputs)
    inputs;
  (* After reset both stages hold 0; latency is two cycles.  Outputs are
     sampled after the clock edge. *)
  Alcotest.(check (list (option int)))
    "two-cycle latency"
    [ Some 0; Some 5; Some (-3); Some 100; Some 0 ]
    (List.rev !outputs)

let test_register_init () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:4 in
  let r = Word.reg nl ~init:9 a in
  Word.output nl "r" r;
  let sim = Netsim.create nl in
  Netsim.reset sim;
  Netsim.eval sim;
  Alcotest.(check (option int)) "init visible before first edge" (Some (-7))
    (Netsim.output_int sim "r")

let test_comb_loop_detected () =
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let g1 = Netlist.add_cell nl Netlist.And2 ~fanins:[| a; a |] in
  let g2 = Netlist.add_cell nl Netlist.Or2 ~fanins:[| g1; a |] in
  Netlist.set_fanin nl g1 1 g2;
  (match Levelize.run nl with
  | Ok _ -> Alcotest.fail "loop not detected"
  | Error msg ->
      Alcotest.(check bool) "mentions loop" true
        (String.length msg > 0))

let test_ff_breaks_loop () =
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let ff = Netlist.add_cell nl (Netlist.Ff Logic.Zero) ~fanins:[| a |] in
  let g = Netlist.add_cell nl Netlist.Xor2 ~fanins:[| ff; a |] in
  Netlist.set_fanin nl ff 0 g;
  (match Levelize.run nl with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("sequential loop rejected: " ^ msg))

let test_toggle_ff () =
  (* A T-flip-flop built as ff := ff xor 1 must toggle every cycle. *)
  let nl = Netlist.create () in
  let one = Netlist.add_cell nl (Netlist.Const Logic.One) ~fanins:[||] in
  let ff = Netlist.add_cell nl (Netlist.Ff Logic.Zero) ~fanins:[| one |] in
  let g = Netlist.add_cell nl Netlist.Xor2 ~fanins:[| ff; one |] in
  Netlist.set_fanin nl ff 0 g;
  let out = Netlist.add_cell nl Netlist.Output ~fanins:[| ff |] in
  Netlist.add_output_port nl "q" [| out |];
  let sim = Netsim.create nl in
  Netsim.reset sim;
  let values = ref [] in
  for _ = 1 to 4 do
    Netsim.step sim;
    values := Netsim.output_int sim "q" :: !values
  done;
  (* One-bit signed output: logic 1 reads back as -1. *)
  Alcotest.(check (list (option int)))
    "toggles" [ Some (-1); Some 0; Some (-1); Some 0 ]
    (List.rev !values)

let test_check_domain_isolation () =
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl ~domain:0 Netlist.Input ~fanins:[||] in
  let _bad = Netlist.add_cell nl ~domain:1 Netlist.Not ~fanins:[| a |] in
  (match Check.run nl with
  | Ok () -> Alcotest.fail "cross-domain read not caught"
  | Error errs ->
      Alcotest.(check bool) "one error" true (List.length errs >= 1))

let test_check_voter_exempt () =
  let nl = Netlist.create () in
  let mk d = Netlist.add_cell nl ~domain:d Netlist.Input ~fanins:[||] in
  let a = mk 0 and b = mk 1 and c = mk 2 in
  let v =
    Netlist.add_cell nl ~domain:0 ~voter:true Netlist.Maj3 ~fanins:[| a; b; c |]
  in
  let out = Netlist.add_cell nl ~domain:0 Netlist.Output ~fanins:[| v |] in
  Netlist.add_output_port nl "o" [| out |];
  match Check.run nl with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs)

let test_check_voter_must_be_majority () =
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let _v = Netlist.add_cell nl ~voter:true Netlist.Not ~fanins:[| a |] in
  match Check.run nl with
  | Ok () -> Alcotest.fail "non-majority voter accepted"
  | Error _ -> ()

let test_lut_eval_x_aware () =
  (* AND LUT: with one X input the output is X only when the other is 1. *)
  let lut = Netlist.lut_of_fun ~arity:2 (fun v -> v.(0) && v.(1)) in
  let eval a b = Netlist.eval_kind (Netlist.Lut lut) [| a; b |] in
  Alcotest.(check char) "0,X -> 0" '0' (Logic.to_char (eval Logic.Zero Logic.X));
  Alcotest.(check char) "1,X -> X" 'X' (Logic.to_char (eval Logic.One Logic.X));
  Alcotest.(check char) "1,1 -> 1" '1' (Logic.to_char (eval Logic.One Logic.One))

let test_lut_of_fun_table () =
  let lut = Netlist.lut_of_fun ~arity:3 (fun v -> (v.(0) && v.(1)) || (v.(0) && v.(2)) || (v.(1) && v.(2))) in
  Alcotest.(check int) "maj3 table" 0b11101000 lut.Netlist.table

let test_ambient_comp () =
  let nl = Netlist.create () in
  Netlist.set_comp nl "top";
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let inner =
    Netlist.with_comp nl "tap3" (fun () ->
        Netlist.add_cell nl Netlist.Not ~fanins:[| a |])
  in
  let after = Netlist.add_cell nl Netlist.Not ~fanins:[| inner |] in
  Alcotest.(check string) "inner" "tap3" (Netlist.comp nl inner);
  Alcotest.(check string) "restored" "top" (Netlist.comp nl after)

let test_fanouts () =
  let nl = Netlist.create () in
  let a = Netlist.add_cell nl Netlist.Input ~fanins:[||] in
  let g1 = Netlist.add_cell nl Netlist.Not ~fanins:[| a |] in
  let g2 = Netlist.add_cell nl Netlist.And2 ~fanins:[| a; g1 |] in
  let fo = Netlist.compute_fanouts nl in
  Alcotest.(check (list int)) "a feeds g1 g2" [ g1; g2 ] (List.sort compare fo.(a));
  Alcotest.(check (list int)) "g1 feeds g2" [ g2 ] fo.(g1);
  Alcotest.(check (list int)) "g2 feeds none" [] fo.(g2)

let test_stats () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:2 in
  let b = Word.input nl "b" ~width:2 in
  let s = Word.add nl a b in
  let r = Word.reg nl s in
  Word.output nl "r" r;
  let st = Stats.compute nl in
  Alcotest.(check int) "inputs" 4 st.Stats.inputs;
  Alcotest.(check int) "outputs" 2 st.Stats.outputs;
  Alcotest.(check int) "ffs" 2 st.Stats.ffs;
  Alcotest.(check bool) "gates > 0" true (st.Stats.gates > 0);
  Alcotest.(check int) "no voters" 0 st.Stats.voters

let test_bad_fanin_rejected () =
  let nl = Netlist.create () in
  Alcotest.(check bool) "bad fanin id" true
    (try
       ignore (Netlist.add_cell nl Netlist.Not ~fanins:[| 5 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad arity" true
    (try
       ignore (Netlist.add_cell nl Netlist.And2 ~fanins:[||]);
       false
     with Invalid_argument _ -> true)

let test_vcd_dump () =
  let nl = build_datapath_for_level () in
  let sim = Netsim.create nl in
  Netsim.reset sim;
  let vcd = Tmr_netlist.Vcd.create sim nl in
  (* trace one flip-flop too *)
  let ff = ref (-1) in
  Netlist.iter_cells nl (fun c ->
      match Netlist.kind nl c with
      | Netlist.Ff _ when !ff < 0 -> ff := c
      | _ -> ());
  Tmr_netlist.Vcd.watch_cell vcd ~label:"r0" !ff;
  List.iter
    (fun (a, b) ->
      Netsim.set_input sim "a" a;
      Netsim.set_input sim "b" b;
      Netsim.eval sim;
      Tmr_netlist.Vcd.sample vcd;
      Netsim.clock sim)
    [ (1, 2); (3, 4); (3, 4); (0, 0) ];
  let text = Tmr_netlist.Vcd.to_string vcd in
  let has needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (has "$enddefinitions");
  Alcotest.(check bool) "declares ports" true (has "$var wire 4");
  Alcotest.(check bool) "declares watch" true (has " r0 ");
  Alcotest.(check bool) "four cycles" true (has "#3");
  (* unchanged cycle 2 emits only the timestamp: the b/a vectors repeat *)
  Alcotest.(check bool) "timestamps ordered" true (has "#0" && has "#1")

let () =
  Alcotest.run "tmr_netlist"
    [
      ( "word-arith",
        [
          QCheck_alcotest.to_alcotest qcheck_add;
          QCheck_alcotest.to_alcotest qcheck_sub;
          QCheck_alcotest.to_alcotest qcheck_bitops;
          QCheck_alcotest.to_alcotest qcheck_mul;
          QCheck_alcotest.to_alcotest qcheck_mul_const;
          QCheck_alcotest.to_alcotest qcheck_mul_const_vs_general;
          Alcotest.test_case "mul_const by zero" `Quick test_mul_const_zero;
          Alcotest.test_case "mul_const negative power of two" `Quick
            test_mul_const_negative_pow2;
          Alcotest.test_case "resize sign-extends" `Quick test_resize_sign_extend;
          Alcotest.test_case "mux2" `Quick test_mux2;
          Alcotest.test_case "eq" `Quick test_eq;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "register pipeline latency" `Quick
            test_register_pipeline;
          Alcotest.test_case "register init value" `Quick test_register_init;
          Alcotest.test_case "toggle flip-flop" `Quick test_toggle_ff;
        ] );
      ( "levelize",
        [
          Alcotest.test_case "combinational loop detected" `Quick
            test_comb_loop_detected;
          Alcotest.test_case "ff breaks loop" `Quick test_ff_breaks_loop;
          Alcotest.test_case "order respects fanins" `Quick
            test_levelize_order_respects_fanins;
        ] );
      ( "netsim-x",
        [
          Alcotest.test_case "undriven inputs read X" `Quick
            test_netsim_undriven_input_is_x;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "waveform dump" `Quick test_vcd_dump;
        ] );
      ( "check",
        [
          Alcotest.test_case "domain isolation enforced" `Quick
            test_check_domain_isolation;
          Alcotest.test_case "voters exempt from isolation" `Quick
            test_check_voter_exempt;
          Alcotest.test_case "voter must be majority" `Quick
            test_check_voter_must_be_majority;
        ] );
      ( "cells",
        [
          Alcotest.test_case "lut eval is X-aware" `Quick test_lut_eval_x_aware;
          Alcotest.test_case "lut_of_fun builds maj3 table" `Quick
            test_lut_of_fun_table;
          Alcotest.test_case "ambient component labels" `Quick test_ambient_comp;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "bad fanins rejected" `Quick test_bad_fanin_rejected;
        ] );
    ]
