(* Benchmark harness: regenerates every table and figure of the paper and
   runs Bechamel micro-benchmarks of the flow stages.

   Usage:
     dune exec bench/main.exe                    # everything, paper scale
     dune exec bench/main.exe -- table3 fig1     # selected experiments
     dune exec bench/main.exe -- quick           # everything, reduced scale
     dune exec bench/main.exe -- micro           # Bechamel micro-benchmarks

   TMR_FAULTS=<n> overrides the faults-per-design sample size. *)

module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Tables = Tmr_experiments.Tables
module Figures = Tmr_experiments.Figures
module Reports = Tmr_experiments.Reports
module Partition = Tmr_core.Partition

let say fmt = Printf.printf (fmt ^^ "\n%!")

let time name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  say "[%s: %.1fs]" name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Experiment registry *)

type wants = {
  mutable device : bool;
  mutable memory : bool;
  mutable t1 : bool;
  mutable t2 : bool;
  mutable t3 : bool;
  mutable t4 : bool;
  mutable f1 : bool;
  mutable f2 : bool;
  mutable f3 : bool;
  mutable f4 : bool;
  mutable micro : bool;
  mutable ablation : bool;
  mutable scrub : bool;
  mutable scale : Context.scale;
}

let needs_runs w = w.t3 || w.t4
let needs_impls w = needs_runs w || w.t1 || w.t2 || w.f1 || w.f3 || w.f4

let run_experiments w ~faults ~seed =
  let ctx = Context.create ~scale:w.scale ~seed ~faults_per_design:faults () in
  say "device: %s"
    (Format.asprintf "%a" Tmr_arch.Arch.pp ctx.Context.dev.Tmr_arch.Device.params);
  if w.device then begin
    print_string (Reports.device_report ctx);
    print_newline ()
  end;
  if w.memory then begin
    print_string (Reports.memory_report ctx);
    print_newline ()
  end;
  if w.f2 then begin
    print_string (time "fig2" (fun () -> Figures.fig2 ctx));
    print_newline ()
  end;
  if needs_impls w then begin
    let impls =
      time "implement 5 designs" (fun () ->
          List.map (Runs.implement_design ctx) Partition.all_paper_designs)
    in
    let find strategy = List.find (fun r -> r.Runs.strategy = strategy) impls in
    if w.t1 then begin
      print_string
        (time "table1" (fun () ->
             Tables.table1 ctx (find Partition.Medium_partition)));
      print_newline ()
    end;
    if w.f1 then begin
      print_string
        (time "fig1" (fun () ->
             Figures.fig1 ctx (find Partition.Min_partition_nv)));
      print_newline ()
    end;
    if w.f3 then begin
      print_string
        (time "fig3" (fun () ->
             Figures.fig3 ctx
               (find Partition.Min_partition_nv)
               (find Partition.Medium_partition)));
      print_newline ()
    end;
    if w.f4 then begin
      print_string (Figures.fig4 impls);
      print_newline ()
    end;
    if w.t2 then begin
      print_string (Tables.table2 impls);
      print_newline ()
    end;
    if needs_runs w then begin
      let last_design = ref "" in
      let progress name done_ total =
        if name <> !last_design then begin
          say "campaign %s: %d faults..." name total;
          last_design := name
        end;
        if done_ > 0 && done_ mod 1000 = 0 then say "  %s: %d/%d" name done_ total
      in
      let runs =
        time "fault-injection campaigns" (fun () ->
            List.map (Runs.campaign_design ~progress ctx) impls)
      in
      if w.t3 then begin
        print_string (Tables.table3 runs);
        print_newline ()
      end;
      if w.t4 then begin
        print_string (Tables.table4 runs);
        print_newline ()
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the flow stages *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  say "micro-benchmarks (reduced device, 3-tap filter):";
  let dev = Tmr_arch.Device.build Tmr_arch.Arch.small in
  let db = Tmr_arch.Bitdb.build dev in
  let params = Tmr_filter.Fir.tiny_params in
  let nl = Tmr_filter.Designs.build ~params Partition.Medium_partition in
  let impl = Tmr_pnr.Impl.implement_exn ~seed:4 dev db nl in
  let faultlist = Tmr_inject.Faultlist.of_impl impl in
  let faults = Tmr_inject.Faultlist.sample faultlist ~seed:5 ~count:16 in
  let golden_nl = Tmr_filter.Fir.build params in
  let stimulus =
    {
      Tmr_inject.Campaign.cycles = 16;
      inputs = [ ("x", Tmr_filter.Fir.stimulus ~cycles:16 ~seed:3 params) ];
    }
  in
  let mapped () = Tmr_techmap.Techmap.run nl in
  let packed () = Tmr_pnr.Pack.run impl.Tmr_pnr.Impl.mapped in
  let placed () =
    Tmr_pnr.Place.run ~seed:4 ~moves_per_site:16 dev impl.Tmr_pnr.Impl.pack
      impl.Tmr_pnr.Impl.mapped
  in
  let routed () =
    match
      Tmr_pnr.Route.run dev impl.Tmr_pnr.Impl.pack impl.Tmr_pnr.Impl.place
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  let ex =
    Tmr_fabric.Extract.create dev db
      (Tmr_arch.Bitstream.copy impl.Tmr_pnr.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
  in
  let out_wires =
    let bits = Tmr_netlist.Netlist.find_output_port impl.Tmr_pnr.Impl.mapped "y" in
    Array.init (Array.length bits) (Tmr_pnr.Impl.output_pad_wire impl "y")
  in
  let ws = Tmr_fabric.Fsim.make_workspace dev in
  let fsim_build () = Tmr_fabric.Fsim.build ~ws ex ~watch_outputs:out_wires in
  let campaign () =
    Tmr_inject.Campaign.run ~name:"micro" ~impl ~golden:golden_nl ~stimulus
      ~faults ()
  in
  let tests =
    [
      Test.make ~name:"techmap tmr_p2 (tiny)" (Staged.stage mapped);
      Test.make ~name:"pack tmr_p2 (tiny)" (Staged.stage packed);
      Test.make ~name:"place tmr_p2 (tiny)" (Staged.stage placed);
      Test.make ~name:"route tmr_p2 (tiny)" (Staged.stage routed);
      Test.make ~name:"fsim build per fault" (Staged.stage fsim_build);
      Test.make ~name:"campaign of 16 faults" (Staged.stage campaign);
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> say "%-28s %12.0f ns/run" name est
          | Some _ | None -> say "%-28s (no estimate)" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let w =
    {
      device = false; memory = false; t1 = false; t2 = false; t3 = false;
      t4 = false; f1 = false; f2 = false; f3 = false; f4 = false;
      micro = false; ablation = false; scrub = false; scale = Context.Paper;
    }
  in
  let all () =
    w.device <- true; w.memory <- true; w.t1 <- true; w.t2 <- true;
    w.t3 <- true; w.t4 <- true; w.f1 <- true; w.f2 <- true; w.f3 <- true;
    w.f4 <- true; w.ablation <- true; w.scrub <- true
  in
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then all ()
  else
    List.iter
      (function
        | "all" -> all ()
        | "quick" ->
            all ();
            w.scale <- Context.Reduced
        | "device" -> w.device <- true
        | "memory" -> w.memory <- true
        | "table1" -> w.t1 <- true
        | "table2" -> w.t2 <- true
        | "table3" -> w.t3 <- true
        | "table4" -> w.t4 <- true
        | "fig1" -> w.f1 <- true
        | "fig2" -> w.f2 <- true
        | "fig3" -> w.f3 <- true
        | "fig4" -> w.f4 <- true
        | "micro" -> w.micro <- true
        | "ablation" -> w.ablation <- true
        | "scrub" -> w.scrub <- true
        | "reduced" -> w.scale <- Context.Reduced
        | other ->
            Printf.eprintf
              "unknown experiment %S (device memory table1-4 fig1-4 \
               ablation scrub micro quick all reduced)\n"
              other;
            exit 2)
      args;
  let faults =
    match Sys.getenv_opt "TMR_FAULTS" with
    | Some v -> int_of_string v
    | None -> if w.scale = Context.Paper then 1500 else 400
  in
  if w.device || w.memory || needs_impls w || w.f2 then
    run_experiments w ~faults ~seed:1;
  if w.ablation || w.scrub then begin
    let ctx = Context.create ~scale:w.scale ~seed:1 ~faults_per_design:faults () in
    if w.ablation then begin
      print_string
        (time "ablation" (fun () ->
             Tmr_experiments.Ablation.floorplan ctx Partition.Medium_partition));
      print_newline ()
    end;
    if w.scrub then begin
      print_string (time "scrub" (fun () -> Tmr_experiments.Ablation.scrub ctx));
      print_newline ()
    end
  end;
  if w.micro then micro ()
