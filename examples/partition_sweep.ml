(* Sweep the voter-partition granularity — the trade-off curve the paper
   motivates but only samples at three points.

   A custom strategy groups the filter's tap blocks k at a time: k = 1 is
   the paper's medium partition (TMR_p2); large k approaches the minimum
   partition (TMR_p3).  For each k we report area, estimated clock, and
   the measured upset sensitivity.

   Runs at reduced scale by default so it finishes in seconds; pass
   "paper" for the full device (minutes).

   Run with: dune exec examples/partition_sweep.exe [-- paper] *)

module Texttab = Tmr_logic.Texttab
module Partition = Tmr_core.Partition
module Tmr = Tmr_core.Tmr
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Campaign = Tmr_inject.Campaign
module Impl = Tmr_pnr.Impl

(* Group component labels "tapNN/..." into blocks of [k] consecutive taps;
   voters go on the boundaries of those groups. *)
let group_of_k k comp =
  let block = Partition.block_group comp in
  if String.length block >= 5 && String.sub block 0 3 = "tap" then begin
    match int_of_string_opt (String.sub block 3 (String.length block - 3)) with
    | Some tap -> Printf.sprintf "group%02d" (tap / k)
    | None -> block
  end
  else block

let strategy_for nl k =
  let barriers = Partition.boundary_cells ~group_of:(group_of_k k) nl in
  Partition.Custom
    ( Printf.sprintf "taps/%d" k,
      { Tmr.barrier = (fun _ c -> barriers.(c));
        vote_registers = true;
        voter = Tmr_core.Voter.Majority;
      } )

let () =
  let scale =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "paper" then Context.Paper
    else Context.Reduced
  in
  let faults = match scale with Context.Paper -> 1200 | Context.Reduced -> 600 in
  let ctx = Context.create ~scale ~faults_per_design:faults () in
  let base = Tmr_filter.Fir.build ctx.Context.params in
  let taps = Array.length ctx.Context.params.Tmr_filter.Fir.coeffs in
  let t =
    Texttab.create
      ~title:"Voter partition sweep: k taps per voter barrier group"
      ~header:
        [ "k"; "voters"; "stages"; "slices"; "est. MHz"; "injected"; "wrong";
          "[%]" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right;
        Texttab.Right; Texttab.Right; Texttab.Right; Texttab.Right ]
  in
  let ks =
    List.sort_uniq compare (List.filter (fun k -> k <= taps) [ 1; 2; 3; 5; taps ])
  in
  List.iter
    (fun k ->
      let strategy = strategy_for base k in
      let run = Runs.implement_design ctx strategy in
      let run = Runs.campaign_design ctx run in
      let st = Tmr_netlist.Stats.compute run.Runs.nl in
      match run.Runs.campaign with
      | None -> ()
      | Some c ->
          Texttab.add_row t
            [
              string_of_int k;
              string_of_int st.Tmr_netlist.Stats.voters;
              string_of_int st.Tmr_netlist.Stats.voter_stages;
              string_of_int (Impl.used_slices run.Runs.impl);
              Printf.sprintf "%.0f" run.Runs.impl.Impl.timing.Tmr_pnr.Timing.mhz;
              string_of_int c.Campaign.injected;
              string_of_int c.Campaign.wrong;
              Printf.sprintf "%.2f" (Campaign.wrong_percent c);
            ];
          Printf.printf "k=%d done\n%!" k)
    ks;
  print_string (Texttab.render t)
