(* tmrtool — command-line driver for the TMR voter-partition study.

   Subcommands:
     report     device / memory composition; campaign regression report
     implement  run one filter version through the CAD flow
     inject     fault-injection campaign on one design
     explain    forensic deep-dive of one fault bit
     tables     regenerate the paper's Tables 2/3/4 (+ forensics) *)

open Cmdliner

module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Tables = Tmr_experiments.Tables
module Reports = Tmr_experiments.Reports
module Store = Tmr_experiments.Store
module Service = Tmr_experiments.Service
module Shard = Tmr_inject.Shard
module Partition = Tmr_core.Partition
module Voter = Tmr_core.Voter
module Impl = Tmr_pnr.Impl
module Campaign = Tmr_inject.Campaign
module Classify = Tmr_inject.Classify
module Forensics = Tmr_inject.Forensics
module Coverage = Tmr_inject.Coverage
module Metrics = Tmr_obs.Metrics
module Stats = Tmr_obs.Stats
module Trace = Tmr_obs.Trace
module Progress = Tmr_obs.Progress
module Fsim = Tmr_fabric.Fsim
module Extract = Tmr_fabric.Extract
module Footprint = Tmr_fabric.Footprint
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Logic = Tmr_logic.Logic
module Vcd = Tmr_netlist.Vcd

let scale_conv =
  let parse = function
    | "paper" -> Ok Context.Paper
    | "reduced" -> Ok Context.Reduced
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (paper|reduced)" s))
  in
  let print ppf = function
    | Context.Paper -> Format.pp_print_string ppf "paper"
    | Context.Reduced -> Format.pp_print_string ppf "reduced"
  in
  Arg.conv (parse, print)

let design_conv =
  let parse s =
    match
      List.find_opt
        (fun d -> Partition.name d = s)
        Partition.all_paper_designs
    with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown design %S (%s)" s
               (String.concat "|" (List.map Partition.name Partition.all_paper_designs))))
  in
  let print ppf d = Format.pp_print_string ppf (Partition.name d) in
  Arg.conv (parse, print)

let scale_t =
  Arg.(value & opt scale_conv Context.Paper & info [ "scale" ] ~doc:"paper or reduced")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed")

let faults_t =
  Arg.(value & opt int 1500 & info [ "faults" ] ~doc:"faults per design")

let design_t =
  Arg.(
    value
    & opt design_conv Partition.Medium_partition
    & info [ "design" ] ~doc:"filter version (standard|tmr_p1|tmr_p2|tmr_p3|tmr_p3_nv)")

let voter_conv =
  let parse s =
    match Voter.of_name s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown voter %S (%s)" s
               (String.concat "|" (List.map Voter.name Voter.all))))
  in
  let print ppf v = Format.pp_print_string ppf (Voter.name v) in
  Arg.conv (parse, print)

let voter_t =
  Arg.(
    value
    & opt voter_conv Voter.Majority
    & info [ "voter" ] ~docv:"V"
        ~doc:
          "Voter macro the TMR designs instantiate: $(b,majority) (the \
           paper's opaque 3-input vote), $(b,improved) (Balasubramanian & \
           Prasad's 2-input-gate decomposition) or $(b,detecting) \
           (majority plus pairwise disagreement flags exported as \
           tmr_err_* ports; campaigns classify every fault into the \
           detected-vs-silent verdict taxonomy).")

let no_diff_t =
  Arg.(
    value & flag
    & info [ "no-diff" ]
        ~doc:
          "Disable the differential fault-simulation engine (baseline tape \
           + cone-restricted event-driven evaluation + convergence \
           early-exit); every patch/reroute fault then replays the full \
           DUT.  Results are bit-identical either way.")

(* --batch-width N with --no-batch as an alias for 0; anything outside
   {0, 32, 64} is rejected at parse time. *)
let batch_width_t =
  let bw_conv =
    let parse s =
      match int_of_string_opt s with
      | Some ((0 | 32 | 64) as w) -> Ok w
      | Some _ | None ->
          Error (`Msg "batch width must be 0, 32 or 64")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let width_t =
    Arg.(
      value & opt bw_conv 64
      & info [ "batch-width" ] ~docv:"N"
          ~doc:
            "Lanes per machine word for the bit-parallel batch engine: 64 \
             (default), 32, or 0 to disable batching.  The batch engine \
             packs patch/reroute faults with structurally close fanout \
             cones into the bit lanes of one word-parallel differential \
             cone walk; verdicts are bit-identical to the scalar engine's \
             fault by fault.")
  in
  let no_batch_t =
    Arg.(
      value & flag
      & info [ "no-batch" ]
          ~doc:
            "Alias for $(b,--batch-width)=0: run every differential fault \
             on the scalar engine.")
  in
  Term.(
    const (fun width no_batch -> if no_batch then 0 else width)
    $ width_t $ no_batch_t)

let mk_ctx scale seed faults =
  Context.create ~scale ~seed ~faults_per_design:faults ()

let forensics_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "forensics" ] ~docv:"FILE"
        ~doc:
          "Stream one JSON object per injected fault to $(docv): domain \
           attribution (which redundancy domains and voter partitions the \
           fault touches, cross-domain flag), divergence trace \
           (first-divergence node/cycle, propagation depth) and the \
           masked-at-voter verdict.  Enables forensic collection; campaign \
           results are bit-identical either way.")

(* Install the forensic sink around the work, flushing also on crash. *)
let with_forensics file f =
  Option.iter Forensics.to_file file;
  Fun.protect ~finally:Forensics.close f

(* --- telemetry (global options, every subcommand) --- *)

let trace_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write Chrome-trace-event JSONL spans (CAD phases, campaigns, \
           per-fault injections) to $(docv).  With $(b,--procs) > 1 each \
           worker traces to its own file and the spans are stitched into \
           $(docv) (pid-qualified) after the run.  Open with \
           ui.perfetto.dev, or wrap into an array for chrome://tracing.")

let metrics_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON metrics snapshot (counters, gauges, latency \
           histogram percentiles) to $(docv) on exit.")

let events_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"SPEC"
        ~doc:
          "Stream live structured campaign events (started / progress / \
           CI updates / worker heartbeats / batch dispatches / stopped) as \
           JSONL.  $(docv) is a file path, or $(b,unix:)$(i,PATH) to serve \
           a Unix-domain socket instead; $(b,tmrtool watch) $(docv) tails \
           either.  Emission never blocks the fault loop: events beyond \
           the buffer are dropped and accounted as sequence-number gaps.  \
           With $(b,--procs) > 1 every worker spools its events beside the \
           shard queue and the parent relays them onto this stream live, \
           origin-stamped ($(i,pid)/$(i,worker)/$(i,shard)/$(i,job)), so \
           file and socket sinks see one merged fleet stream.")

let listen_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "listen" ] ~docv:"PORT"
        ~doc:
          "Serve the live metrics registry on \
           http://127.0.0.1:$(docv)/metrics (Prometheus text format \
           v0.0.4) for the duration of the run.  Port 0 picks a free \
           port (printed to stderr).")

let telemetry_t =
  Term.(
    const (fun trace metrics events listen -> (trace, metrics, events, listen))
    $ trace_file_t $ metrics_file_t $ events_file_t $ listen_t)

let install_events spec =
  match String.length spec >= 5 && String.sub spec 0 5 = "unix:" with
  | true -> Tmr_obs.Events.listen_unix (String.sub spec 5 (String.length spec - 5))
  | false -> Tmr_obs.Events.to_file spec

(* An interrupted run should still leave its telemetry behind: first
   wind down any forked worker fleet (terminate, reap, drain the spool
   tails onto the bus — so the merged stream ends on whole lines), then
   flush every sink and exit with the conventional 128+SIGINT status. *)
let install_sigint metrics =
  ignore
    (Sys.signal Sys.sigint
       (Sys.Signal_handle
          (fun _ ->
            (try Service.interrupt () with _ -> ());
            (try Trace.close () with _ -> ());
            (try Tmr_obs.Events.close () with _ -> ());
            (try Forensics.close () with _ -> ());
            (try Option.iter Metrics.write_file metrics with _ -> ());
            exit 130)))

(* Install the trace/event sinks and the exposition endpoint before the
   work and always flush everything after — also when the command
   raises or is interrupted, so a crashed run still leaves its
   telemetry behind. *)
let with_telemetry (trace, metrics, events, listen) f =
  Option.iter Trace.to_file trace;
  Option.iter install_events events;
  Option.iter
    (fun port ->
      Tmr_obs.Expose.set_active_probe (Some Campaign.active_campaigns);
      let p = Tmr_obs.Expose.listen port in
      Printf.eprintf "serving metrics on http://127.0.0.1:%d/metrics\n%!" p)
    listen;
  install_sigint metrics;
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      Tmr_obs.Events.close ();
      Tmr_obs.Expose.stop ();
      Option.iter Metrics.write_file metrics)
    f

(* engine-summary pretty-printing *)

let dur_pp ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fµs" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let engine_summary (c : Campaign.t) =
  let s = c.Campaign.stats in
  Printf.printf "engine: %d workers, wall %s, worker utilization %.0f%%\n"
    c.Campaign.workers
    (dur_pp (float_of_int c.Campaign.wall_ns))
    (100.0 *. Campaign.utilization c);
  let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 c.Campaign.injected) in
  Printf.printf
    "  plan paths: silent %d (%.1f%%), patched %d (%.1f%%), rerouted %d \
     (%.1f%%), rebuilt %d (%.1f%%)\n"
    s.Campaign.skipped (pct s.Campaign.skipped) s.Campaign.patched
    (pct s.Campaign.patched) s.Campaign.rerouted (pct s.Campaign.rerouted)
    s.Campaign.rebuilt (pct s.Campaign.rebuilt);
  let snap = Metrics.snapshot () in
  if s.Campaign.diffed > 0 then begin
    let conv_pct =
      100.0
      *. float_of_int s.Campaign.converged
      /. float_of_int (max 1 s.Campaign.diffed)
    in
    match
      List.assoc_opt "campaign.diff_converge_cycle" snap.Metrics.histograms
    with
    | Some h when h.Metrics.count > 0 ->
        Printf.printf
          "  diff engine: %d differential, %d converged early (%.1f%%), \
           median convergence cycle %.0f\n"
          s.Campaign.diffed s.Campaign.converged conv_pct h.Metrics.p50
    | _ ->
        Printf.printf
          "  diff engine: %d differential, %d converged early (%.1f%%)\n"
          s.Campaign.diffed s.Campaign.converged conv_pct
  end;
  if s.Campaign.batched > 0 then begin
    match List.assoc_opt "campaign.batch_occupancy" snap.Metrics.histograms with
    | Some h when h.Metrics.count > 0 ->
        Printf.printf
          "  batch engine: %d faults word-parallel in %d batches, lane \
           occupancy p50 %.0f p95 %.0f\n"
          s.Campaign.batched h.Metrics.count h.Metrics.p50 h.Metrics.p95
    | _ -> Printf.printf "  batch engine: %d faults word-parallel\n" s.Campaign.batched
  end;
  Printf.printf "  %-18s %8s %9s %9s %9s\n" "fault latency" "count" "p50"
    "p95" "p99";
  List.iter
    (fun path ->
      match
        List.assoc_opt ("campaign.fault_ns." ^ path) snap.Metrics.histograms
      with
      | Some h when h.Metrics.count > 0 ->
          Printf.printf "  %-18s %8d %9s %9s %9s\n" ("  " ^ path)
            h.Metrics.count (dur_pp h.Metrics.p50) (dur_pp h.Metrics.p95)
            (dur_pp h.Metrics.p99)
      | _ -> ())
    [ "silent"; "patch"; "reroute"; "rebuild"; "diff"; "batch" ]

(* --- campaign statistics options --- *)

let confidence_t =
  Arg.(
    value & opt float 0.95
    & info [ "confidence" ] ~docv:"LEVEL"
        ~doc:
          "Confidence level for every interval and compatibility test \
           (0 < LEVEL < 1).")

let stop_ci_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "stop-ci" ] ~docv:"PTS"
        ~doc:
          "Stop each campaign as soon as the wrong-answer rate is known to \
           ±$(docv) percentage points (Wilson CI half-width at the chosen \
           confidence, evaluated over the completed fault prefix).  The \
           kept results are bit-identical to the full campaign truncated \
           at the stop index.")

let stop_min_t =
  Arg.(
    value & opt int 100
    & info [ "stop-min" ] ~docv:"N"
        ~doc:"Never CI-stop before $(docv) faults (guards tiny-n flukes).")

let stop_rule_of ~confidence ~stop_min = function
  | None -> None
  | Some pts when pts > 0.0 ->
      Some
        (Stats.stop_rule ~confidence ~min_n:stop_min ~half_width:(pts /. 100.)
           ())
  | Some pts ->
      Printf.eprintf "tmrtool: --stop-ci must be positive, got %g\n" pts;
      exit 2

(* Progress with the running wrong-answer rate ± CI in the bar.  Returns
   the callback (for [Runs.campaign_design ~progress]) and a flush to
   close the bar of a CI-stopped campaign (which never reaches 100%). *)
let ci_progress ~confidence () =
  let cb, flush = Progress.callback_note () in
  let progress name (p : Campaign.progress) =
    let note =
      if p.Campaign.p_completed <= 0 then ""
      else begin
        let n = p.Campaign.p_completed and k = p.Campaign.p_wrong in
        let i = Stats.wilson ~confidence ~n ~k () in
        (* the CI the bar shows also goes on the event stream, so a
           remote `tmrtool watch` renders the same numbers *)
        if Tmr_obs.Events.enabled () then
          Tmr_obs.Events.publish
            (Tmr_obs.Events.Campaign_ci
               {
                 design = name;
                 n;
                 wrong = k;
                 confidence;
                 lo = i.Stats.lo;
                 hi = i.Stats.hi;
               });
        Printf.sprintf "wrong %.2f%% ±%.2f%%"
          (100.0 *. float_of_int k /. float_of_int n)
          (50.0 *. (i.Stats.hi -. i.Stats.lo))
      end
    in
    cb name note p.Campaign.p_completed p.Campaign.p_total
  in
  (progress, flush)

let rate_ci_line ~confidence (c : Campaign.t) =
  let i = Campaign.ci ~confidence c in
  Printf.sprintf "%.2f%% [%.2f%%, %.2f%%] at %.0f%% confidence"
    (Campaign.wrong_percent c)
    (100.0 *. i.Stats.lo) (100.0 *. i.Stats.hi) (100.0 *. confidence)

(* Campaign worker-domain count; default picked by Campaign. *)
let jobs () =
  match Sys.getenv_opt "TMR_JOBS" with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Some n
      | None ->
          Printf.eprintf "tmrtool: TMR_JOBS must be an integer, got %S\n" v;
          exit 2)

(* --- report --- *)

let store_t =
  Arg.(
    value & opt string ".tmr-runs"
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Run-store directory: one JSON manifest per campaign.  History \
           found there becomes the regression baseline; the current run is \
           appended after the comparison.")

let report_campaign ~ctx ~confidence ~stop ~store ~out ~heatmap =
  let progress, flush = ci_progress ~confidence () in
  let runs = Runs.run_all ~progress ?workers:(jobs ()) ?stop_at_ci:stop ctx in
  flush ();
  (* history first: the freshly-saved manifests must not be their own
     baseline *)
  let history = Store.load_dir ~dir:store () in
  let manifests =
    List.map (fun r -> Store.of_run ~confidence ?stop ctx r) runs
  in
  let report = Store.report_markdown ~confidence ~history manifests in
  List.iter
    (fun m -> Printf.eprintf "stored %s\n" (Store.save ~dir:store m))
    manifests;
  (match out with
  | None -> print_string report
  | Some path ->
      let oc = open_out path in
      output_string oc report;
      close_out oc;
      Printf.eprintf "wrote %s\n" path);
  match heatmap with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      List.iter
        (fun (r : Runs.design_run) ->
          match Runs.coverage_of r with
          | None -> ()
          | Some cov ->
              output_string oc (Partition.name r.Runs.strategy ^ "\n");
              output_string oc (Coverage.heatmap cov);
              output_char oc '\n')
        runs;
      close_out oc;
      Printf.eprintf "wrote %s\n" path

let report_cmd =
  let what =
    Arg.(
      value & pos 0 string "device"
      & info [] ~docv:"WHAT" ~doc:"device, memory or campaign")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"write the campaign markdown report to $(docv) instead of stdout")
  in
  let heatmap_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "heatmap" ] ~docv:"FILE"
          ~doc:
            "write the per-design ASCII injection-coverage heatmaps \
             (frame × offset device grid) to $(docv)")
  in
  let run telem scale seed faults what store out heatmap confidence stop_ci
      stop_min =
    with_telemetry telem @@ fun () ->
    match what with
    | "device" -> print_string (Reports.device_report (mk_ctx scale seed 0))
    | "memory" -> print_string (Reports.memory_report (mk_ctx scale seed 0))
    | "campaign" ->
        let ctx = mk_ctx scale seed faults in
        let stop = stop_rule_of ~confidence ~stop_min stop_ci in
        report_campaign ~ctx ~confidence ~stop ~store ~out ~heatmap
    | other ->
        Printf.eprintf "unknown report %S (device|memory|campaign)\n" other;
        exit 2
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "device / memory composition reports; campaign regression report \
          (all five designs vs. the stored history, with CIs, coverage and \
          throughput checks)")
    Term.(
      const run $ telemetry_t $ scale_t $ seed_t $ faults_t $ what $ store_t
      $ out_t $ heatmap_t $ confidence_t $ stop_ci_t $ stop_min_t)

(* --- implement --- *)

let implement_cmd =
  let run telem scale seed design voter =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed 0 in
    let r = Runs.implement_design ~voter ctx design in
    let impl = r.Runs.impl in
    Printf.printf "%s (%s)\n" (Partition.paper_name design)
      (Tmr_filter.Designs.description design);
    let vc = Voter.cost voter in
    Printf.printf
      "  voter         %s (%d vote + %d detect cells/bit, %d levels, %.2f ns)\n"
      (Voter.name voter) vc.Voter.vote_cells vc.Voter.detect_cells
      vc.Voter.levels vc.Voter.delay_ns;
    Printf.printf "  slices        %d\n" (Impl.used_slices impl);
    Printf.printf "  LUTs          %d\n" (Impl.used_luts impl);
    Printf.printf "  flip-flops    %d\n" (Impl.used_ffs impl);
    Printf.printf "  route iters   %d\n"
      impl.Impl.route.Tmr_pnr.Route.iterations;
    Printf.printf "  est. clock    %.1f MHz (critical %.1f ns, %d LUT levels)\n"
      impl.Impl.timing.Tmr_pnr.Timing.mhz
      impl.Impl.timing.Tmr_pnr.Timing.critical_ns
      impl.Impl.timing.Tmr_pnr.Timing.logic_levels;
    List.iter
      (fun (cls, n) ->
        Printf.printf "  DUT %-13s %d bits\n" (Tmr_arch.Bitdb.class_name cls) n)
      r.Runs.faultlist.Tmr_inject.Faultlist.by_class
  in
  Cmd.v
    (Cmd.info "implement" ~doc:"map, place and route one filter version")
    Term.(const run $ telemetry_t $ scale_t $ seed_t $ design_t $ voter_t)

(* --- inject --- *)

(* sharded / distributed campaign options *)

let exhaustive_t =
  Arg.(
    value & flag
    & info [ "exhaustive" ]
        ~doc:
          "Inject the design's $(i,entire) essential-bit list instead of a \
           random sample: the exact wrong-answer rate, no confidence \
           interval.  Runs through the sharded engine; combine with \
           $(b,--shards)/$(b,--procs)/$(b,--shard-dir) to checkpoint and \
           parallelise.")

let shards_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Plan the fault space as $(docv) checkpointable ranges (default \
           16 when sharded).  Every completed shard persists a manifest \
           plus per-fault JSONL under the shard directory, so an \
           interrupted run resumes from what is already done.")

let procs_t =
  Arg.(
    value & opt int 1
    & info [ "procs" ] ~docv:"P"
        ~doc:
          "Fork $(docv) worker processes that claim shards concurrently \
           from the on-disk queue (rename-based claims; a crashed worker's \
           claim is reclaimed by the next invocation).  The merged result \
           is bit-identical to $(b,--procs) 1.")

let shard_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard-dir" ] ~docv:"DIR"
        ~doc:
          "Shard queue directory (default $(b,.tmr-shards/)<job name>): \
           job.json, todo/, claims/, done/ manifests, results/ JSONL.  \
           Rerunning with the same $(docv) resumes; a directory holding a \
           different job is refused unless $(b,--fresh).")

let shard_limit_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard-limit" ] ~docv:"N"
        ~doc:
          "Stop this invocation after claiming $(docv) shards (per process \
           when forked) — time-boxing for incremental exhaustive runs; the \
           campaign reports incomplete and the next run continues.")

let fresh_t =
  Arg.(
    value & flag
    & info [ "fresh" ]
        ~doc:
          "Discard existing shard state in the queue directory instead of \
           refusing on a job-fingerprint mismatch.")

let merged_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "merged-out" ] ~docv:"FILE"
        ~doc:
          "Write the merged per-fault verdicts (index-ordered JSONL, one \
           object per fault) to $(docv) — the byte-comparable artifact for \
           sharded-equivalence checks.")

let effect_table (c : Campaign.t) =
  List.iter
    (fun eff ->
      let n =
        Array.fold_left
          (fun acc fr ->
            if
              fr.Campaign.outcome = Campaign.Wrong_answer
              && fr.Campaign.effect = eff
            then acc + 1
            else acc)
          0 c.Campaign.results
      in
      if n > 0 then Printf.printf "  %-14s %d\n" (Classify.name eff) n)
    Classify.all

(* the four-way detected-vs-silent split, printed only when the design
   actually carries detection logic *)
let detection_summary voter (c : Campaign.t) =
  if Voter.has_detection voter then begin
    let d = Campaign.detection_counts c in
    Printf.printf
      "  detection: corrected %d, detected-wrong %d, SDC %d (%.2f%% silent \
       wrong), silent-correct %d\n"
      d.Campaign.dc_detected_corrected d.Campaign.dc_detected_wrong
      d.Campaign.dc_silent_wrong (Campaign.sdc_percent c)
      d.Campaign.dc_silent_correct
  end

let json_t =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the campaign summary as one JSON object on stdout instead \
           of the human-readable text (progress still goes to stderr).")

let inject_cmd =
  let inject_store_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"append this campaign's manifest to the run store at $(docv)")
  in
  (* inject via the shard engine: plan → (resume) → claim → merge *)
  let run_sharded_inject ~telem ~confidence ~scale ~seed ~faults ~design
      ~voter ~no_diff ~batch_width ~json ~store ~exhaustive ~shards ~procs
      ~shard_dir ~shard_limit ~fresh ~merged_out =
    let ctx = mk_ctx scale seed faults in
    let r = Runs.implement_design ~voter ctx design in
    let job =
      Service.job ~scale ~seed ~faults ~exhaustive ?shards
        ?workers:(jobs ()) ~diff:(not no_diff) ~batch_width ~voter design
    in
    let dir =
      match shard_dir with
      | Some d -> d
      | None -> Filename.concat ".tmr-shards" (Service.job_name job)
    in
    (* keep the event stream fed and give the terminal one line per
       checkpointed range *)
    let notify ev =
      Tmr_obs.Events.publish ev;
      match ev with
      | Tmr_obs.Events.Shard_done { shard; lo; hi; wrong; pending; _ } ->
          Printf.eprintf "shard %3d [%7d,%7d) done: wrong %d, %d pending\n%!"
            shard lo hi wrong pending
      | _ -> ()
    in
    match
      Service.run_sharded ~procs ?shard_limit ~fresh ~notify ~dir job ctx r
    with
    | Error e ->
        Printf.eprintf "tmrtool: %s\n" e;
        exit 1
    | Ok (Service.Incomplete { done_shards; pending_shards } as st) ->
        if json then print_endline (Service.summary_json job st)
        else
          Printf.printf
            "%s: incomplete — %d shards done, %d pending; rerun with \
             --shard-dir %s to continue\n"
            (Partition.paper_name design) done_shards pending_shards dir
    | Ok (Service.Complete o as st) ->
        let c = o.o_campaign in
        Option.iter
          (fun path ->
            let oc = open_out path in
            Array.iteri
              (fun i res ->
                output_string oc (Shard.result_to_line ~index:i res);
                output_char oc '\n')
              c.Campaign.results;
            close_out oc;
            Printf.eprintf "merged per-fault results written to %s\n" path)
          merged_out;
        Option.iter
          (fun dir ->
            let _, _, events_spec, _ = telem in
            let spools =
              List.map
                (fun (s : Service.spool_info) ->
                  {
                    Store.sr_worker = s.Service.sp_worker;
                    sr_path = s.Service.sp_path;
                    sr_events = s.Service.sp_events;
                    sr_gaps = s.Service.sp_gaps;
                  })
                o.Service.o_spools
            in
            let m =
              Store.of_run ~confidence ~diff:(not no_diff) ~exhaustive
                ?events_path:events_spec ~spools ctx
                { r with Runs.campaign = Some c }
            in
            Printf.eprintf "stored %s\n" (Store.save ~dir m))
          store;
        if json then print_endline (Service.summary_json job st)
        else begin
          Printf.printf "%s: injected %d, wrong answers %d (%s)\n"
            (Partition.paper_name design) c.Campaign.injected c.Campaign.wrong
            (if exhaustive then
               Printf.sprintf "exact rate %.4f%% over every essential bit"
                 (Campaign.wrong_percent c)
             else rate_ci_line ~confidence c);
          Printf.printf
            "  shards: %d merged (%d resumed from manifests, %d simulated), \
             %d process%s\n"
            (o.Service.o_resumed + o.Service.o_fresh)
            o.Service.o_resumed o.Service.o_fresh procs
            (if procs = 1 then "" else "es");
          effect_table c;
          detection_summary voter c;
          engine_summary c
        end
  in
  let run telem forensics scale seed faults design voter no_diff batch_width
      json confidence stop_ci stop_min store exhaustive shards procs shard_dir
      shard_limit fresh merged_out =
    let sharded =
      exhaustive || procs > 1 || shards <> None || shard_dir <> None
      || shard_limit <> None || merged_out <> None
    in
    (* fail fast on options the sharded engine cannot honour *)
    if sharded then begin
      if stop_ci <> None then begin
        Printf.eprintf
          "tmrtool: --stop-ci does not combine with sharded campaigns \
           (merging needs full coverage of the fault space; exhaustive runs \
           are exact and need no CI)\n";
        exit 2
      end;
      if forensics <> None then begin
        Printf.eprintf
          "tmrtool: --forensics does not combine with sharded campaigns \
           (per-shard result lines carry no forensic records)\n";
        exit 2
      end
    end;
    with_telemetry telem @@ fun () ->
    with_forensics forensics @@ fun () ->
    if sharded then
      run_sharded_inject ~telem ~confidence ~scale ~seed ~faults ~design
        ~voter ~no_diff ~batch_width ~json ~store ~exhaustive ~shards ~procs
        ~shard_dir ~shard_limit ~fresh ~merged_out
    else begin
      let ctx = mk_ctx scale seed faults in
      let r = Runs.implement_design ~voter ctx design in
      let stop = stop_rule_of ~confidence ~stop_min stop_ci in
      let progress, flush = ci_progress ~confidence () in
      let r =
        Runs.campaign_design ~progress ?workers:(jobs ()) ~diff:(not no_diff)
          ~batch_width ?stop_at_ci:stop ctx r
      in
      flush ();
      match r.Runs.campaign with
      | None -> assert false
      | Some c ->
          Option.iter
            (fun dir ->
              let _, _, events_spec, _ = telem in
              let m =
                Store.of_run ~confidence ~diff:(not no_diff)
                  ~forensics:(forensics <> None) ?stop
                  ?events_path:events_spec ctx r
              in
              Printf.eprintf "stored %s\n" (Store.save ~dir m))
            store;
          if json then print_endline (Campaign.summary_json c)
          else begin
            Printf.printf "%s: injected %d%s, wrong answers %d (%s)\n"
              (Partition.paper_name design) c.Campaign.injected
              (if c.Campaign.injected < c.Campaign.requested then
                 Printf.sprintf " of %d requested (CI stop)"
                   c.Campaign.requested
               else "")
              c.Campaign.wrong
              (rate_ci_line ~confidence c);
            effect_table c;
            detection_summary voter c;
            engine_summary c
          end
    end
  in
  Cmd.v
    (Cmd.info "inject" ~doc:"fault-injection campaign on one design")
    Term.(
      const run $ telemetry_t $ forensics_file_t $ scale_t $ seed_t $ faults_t
      $ design_t $ voter_t $ no_diff_t $ batch_width_t $ json_t $ confidence_t
      $ stop_ci_t $ stop_min_t $ inject_store_t $ exhaustive_t $ shards_t
      $ procs_t $ shard_dir_t $ shard_limit_t $ fresh_t $ merged_out_t)

(* --- explain --- *)

let explain_cmd =
  let bit_t =
    Arg.(
      required
      & opt (some int) None
      & info [ "bit" ] ~docv:"N" ~doc:"configuration bit address to explain")
  in
  let vcd_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:
            "Write the faulty run's output waveforms to $(docv) in VCD \
             format, one signal per output port plus its golden reference.")
  in
  let run telem scale seed design voter bit vcd_out =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed 0 in
    let r = Runs.implement_design ~voter ctx design in
    let impl = r.Runs.impl in
    let dev = impl.Impl.dev and db = impl.Impl.db in
    if bit < 0 || bit >= Bitdb.num_bits db then begin
      Printf.eprintf "tmrtool: bit %d out of range (device has %d bits)\n" bit
        (Bitdb.num_bits db);
      exit 2
    end;
    Printf.printf "bit %d on %s (seed %d)\n" bit
      (Partition.paper_name design) seed;
    Printf.printf "  class        %s\n"
      (Bitdb.class_name (Bitdb.class_of_bit db bit));
    let fp = Footprint.of_bit dev db bit in
    Printf.printf "  footprint    %s\n" (Footprint.describe dev fp);
    if
      not
        (Array.exists
           (Int.equal bit)
           r.Runs.faultlist.Tmr_inject.Faultlist.bits)
    then
      print_endline
        "  note         bit is outside the DUT fault list (unused resource)";
    Printf.printf "  effect       %s\n" (Classify.name (Classify.classify impl bit));
    (* structural attribution: domains / partitions the footprint touches *)
    let a = Forensics.attrib_of_impl impl in
    let st = Forensics.structural a bit in
    let domains =
      List.filter
        (fun d -> st.Forensics.domain_mask land (1 lsl d) <> 0)
        [ 0; 1; 2 ]
    in
    Printf.printf "  domains      %s%s\n"
      (if domains = [] then "none (unused or domain-neutral resources)"
       else String.concat "," (List.map string_of_int domains))
      (if st.Forensics.cross_domain then
         "   <- cross-domain: bridges redundancy domains, the vote cannot fix it"
       else "");
    Printf.printf "  partitions   %s\n"
      (if Array.length st.Forensics.partitions = 0 then "-"
       else
         String.concat ", "
           (Array.to_list
              (Array.map (Forensics.part_name a) st.Forensics.partitions)));
    if st.Forensics.voter_touch then
      print_endline "  voter        footprint touches voter logic or a voter net";
    (* build the fabric simulators and plan the fault *)
    let stim = ctx.Context.stimulus in
    let cycles = stim.Campaign.cycles in
    let golden =
      Campaign.golden_outputs ctx.Context.golden_nl stim
    in
    let ex =
      Extract.create dev db
        (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
    in
    let ws = Fsim.make_workspace dev in
    (* the detecting voter's disagreement flags, when the design has
       them: watched at the end, expected all-zero, like in campaigns *)
    let detect_map =
      List.filter_map
        (fun port ->
          if
            List.mem_assoc port
              (Tmr_netlist.Netlist.output_ports impl.Impl.mapped)
          then Some (port, Campaign.dut_output_wires impl port)
          else None)
        Voter.detect_ports
    in
    let ndetect =
      List.fold_left (fun n (_, w) -> n + Array.length w) 0 detect_map
    in
    let watch_outputs =
      Array.concat
        (List.map (fun (port, _) -> Campaign.dut_output_wires impl port) golden
        @ List.map snd detect_map)
    in
    let base = Fsim.build ~ws ex ~watch_outputs in
    let cone = Fsim.snapshot_cone ws in
    let plan = Fsim.plan_fault cone ex bit in
    Printf.printf "  plan path    %s\n" (Fsim.path_name plan);
    let io_ins sim =
      List.map
        (fun (port, samples) ->
          ( List.map (Fsim.pad_nodes sim) (Campaign.dut_input_wires impl port),
            samples ))
        stim.Campaign.inputs
    in
    let drive sim ins c =
      List.iter
        (fun (node_sets, samples) ->
          let v = samples.(c) in
          List.iter
            (fun nodes ->
              Array.iteri
                (fun i n ->
                  Fsim.set_node sim n (Logic.of_bool ((v asr i) land 1 = 1)))
                nodes)
            node_sets)
        ins
    in
    Extract.apply_bit_flip ex bit;
    (* differential divergence trace (patch / reroute faults only) *)
    let diffinfo =
      match plan with
      | Fsim.Path_patch | Fsim.Path_reroute -> (
          let ins = io_ins base in
          let tape =
            Fsim.tape_create ~nnodes:(Fsim.num_nodes base) ~cycles
          in
          Fsim.reset base;
          for c = 0 to cycles - 1 do
            drive base ins c;
            Fsim.eval base;
            Fsim.tape_record tape base ~cycle:c;
            Fsim.clock base
          done;
          let base_watch = Fsim.watch_nodes base watch_outputs in
          let expected =
            let det_zeros = Array.make ndetect Logic.Zero in
            Array.init cycles (fun c ->
                Array.concat
                  (List.map (fun (_, m) -> m.(c)) golden @ [ det_zeros ]))
          in
          let dsc = Fsim.make_dscratch () in
          let run_diff sim seeds =
            let watch =
              if sim == base then base_watch
              else Fsim.watch_nodes sim watch_outputs
            in
            Fsim.diff_run ~ndetect ~forensics:true ~scratch:dsc ~tape ~base
              ~sim ~seeds ~watch ~base_watch ~expected ()
          in
          match plan with
          | Fsim.Path_patch ->
              let seed = Fsim.patch_node cone ex bit in
              let res =
                Fsim.with_patch cone base ex bit (fun sim ->
                    run_diff sim (Fsim.Seed_node seed))
              in
              Some (dsc, res)
          | Fsim.Path_reroute -> (
              let scratch = Fsim.make_scratch () in
              match Fsim.reroute ~scratch cone base ex bit with
              | Some sim -> Some (dsc, run_diff sim Fsim.Seed_derived)
              | None -> None)
          | _ -> None)
      | _ -> None
    in
    (* ground truth: full rebuild of the faulted fabric, replayed end to
       end (also feeds the waveform) *)
    let fsim = Fsim.build ex ~watch_outputs in
    let ins = io_ins fsim in
    let outs =
      List.map
        (fun (port, matrix) ->
          (port, Fsim.watch_nodes fsim (Campaign.dut_output_wires impl port),
           matrix))
        golden
    in
    let vcd = Option.map (fun _ -> Vcd.writer ()) vcd_out in
    let vcd_sigs =
      match vcd with
      | None -> []
      | Some w ->
          List.map
            (fun (port, _, matrix) ->
              let width = Array.length matrix.(0) in
              ( Vcd.add_signal w ~label:port ~width,
                Vcd.add_signal w ~label:(port ^ ".golden") ~width ))
            outs
    in
    Fsim.reset fsim;
    let first_err = ref (-1) in
    let err_detail = ref None in
    (* per disagreement flag: the first cycle it left zero *)
    let det_nodes =
      List.map
        (fun (port, wires) -> (port, Fsim.watch_nodes fsim wires, ref (-1)))
        detect_map
    in
    for c = 0 to cycles - 1 do
      drive fsim ins c;
      Fsim.eval fsim;
      List.iter
        (fun (port, nodes, matrix) ->
          Array.iteri
            (fun i n ->
              if not (Logic.equal (Fsim.node_value fsim n) matrix.(c).(i))
              then begin
                if !first_err < 0 then begin
                  first_err := c;
                  err_detail := Some (port, i)
                end
              end)
            nodes)
        outs;
      List.iter
        (fun (_, nodes, first) ->
          if
            !first < 0
            && Array.exists
                 (fun n ->
                   not (Logic.equal (Fsim.node_value fsim n) Logic.Zero))
                 nodes
          then first := c)
        det_nodes;
      (match vcd with
      | Some w ->
          List.iter2
            (fun (fs, gs) (_, nodes, matrix) ->
              Vcd.set w fs (Array.map (Fsim.node_value fsim) nodes);
              Vcd.set w gs matrix.(c))
            vcd_sigs outs;
          Vcd.tick w
      | None -> ());
      Fsim.clock fsim
    done;
    (match !first_err with
    | -1 -> print_endline "  outcome      silent (all outputs match golden)"
    | c ->
        let port, i = Option.get !err_detail in
        Printf.printf
          "  outcome      WRONG ANSWER, first at cycle %d (port %S bit %d)\n"
          c port i);
    if ndetect > 0 then begin
      let fired =
        List.filter_map
          (fun (port, _, first) ->
            if !first >= 0 then Some (port, !first) else None)
          det_nodes
      in
      match fired with
      | [] ->
          print_endline
            (if !first_err >= 0 then
               "  detection    NONE — silent data corruption: no \
                disagreement flag ever fired"
             else "  detection    none (no voter pair ever disagreed)")
      | l ->
          let earliest = List.fold_left (fun a (_, c) -> min a c) max_int l in
          Printf.printf "  detection    %s  (first flag at cycle %d)\n"
            (String.concat ", "
               (List.map (fun (p, c) -> Printf.sprintf "%s@%d" p c) l))
            earliest
    end;
    (match diffinfo with
    | None -> (
        match plan with
        | Fsim.Path_silent ->
            print_endline
              "  divergence   none: the bit is outside the DUT's active \
               fabric (cone-silent)"
        | _ ->
            print_endline
              "  divergence   n/a: the fault restructures the netlist \
               (rebuild path), no differential trace")
    | Some (dsc, (derr, conv, ddet)) ->
        if ndetect > 0 && ddet >= 0 then
          Printf.printf
            "  diff detect  differential engine saw the flag at cycle %d\n"
            ddet;
        let d = Fsim.diff_forensics dsc in
        Printf.printf "  cone         %d nodes, %d seeds, frontier %d\n"
          d.Fsim.df_cone d.Fsim.df_seeds d.Fsim.df_frontier;
        if d.Fsim.df_diverged = 0 then
          print_endline
            (if !first_err >= 0 then
               "  divergence   confined to rewired/appended nodes (no \
                baseline-comparable node diverged)"
             else
               "  divergence   cone never left the baseline (masked at the \
                fault site)")
        else begin
          Printf.printf
            "  divergence   %d cone nodes diverged; first at cycle %d, \
             propagation depth %d\n"
            d.Fsim.df_diverged d.Fsim.df_first_cycle d.Fsim.df_depth;
          (* describe the first diverging node via its bel, if it has one *)
          let node = d.Fsim.df_first_node in
          let bel = ref (-1) in
          for b = 0 to dev.Tmr_arch.Device.nbels - 1 do
            if !bel < 0 && Fsim.cone_node_of_bel cone b = node then bel := b
          done;
          if !bel >= 0 then
            Printf.printf
              "  first node   %d = bel %d (domain %d, partition %s%s)\n" node
              !bel
              a.Forensics.bel_domain.(!bel)
              (Forensics.part_name a a.Forensics.bel_part.(!bel))
              (if a.Forensics.bel_voter.(!bel) then ", voter" else "")
          else Printf.printf "  first node   %d (routing/pad node)\n" node;
          (* voter masking: silent overall, yet some voter in the cone
             held its baseline value every cycle *)
          if derr < 0 then begin
            let nn = Fsim.num_nodes base in
            let voter_nodes = Bytes.make nn '\000' in
            Array.iteri
              (fun b isv ->
                if isv then begin
                  let n = Fsim.cone_node_of_bel cone b in
                  if n >= 0 && n < nn then Bytes.set voter_nodes n '\001'
                end)
              a.Forensics.bel_voter;
            let masked =
              Array.exists
                (fun n ->
                  n < nn
                  && Bytes.get voter_nodes n <> '\000'
                  && not (Fsim.diff_node_diverged dsc n))
                (Fsim.diff_cone dsc)
            in
            if masked then
              print_endline
                "  verdict      masked at a voter: internal corruption \
                 stopped at (or before) a majority vote"
            else
              print_endline
                "  verdict      silent but diverged; no voter in the cone \
                 held its baseline (logic masking)"
          end
        end;
        if conv >= 0 then
          Printf.printf
            "  convergence  faulty state rejoined the baseline at cycle %d\n"
            conv);
    match (vcd, vcd_out) with
    | Some w, Some path ->
        Vcd.writer_save w path;
        Printf.printf "  waveform     wrote %s (%d cycles)\n" path cycles
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"forensic deep-dive of one configuration bit on one design")
    Term.(
      const run $ telemetry_t $ scale_t $ seed_t $ design_t $ voter_t $ bit_t
      $ vcd_t)

(* --- congestion --- *)

let congestion_cmd =
  let run telem scale seed design =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed 0 in
    let r = Runs.implement_design ctx design in
    let impl = r.Runs.impl in
    let cong =
      Tmr_pnr.Congestion.analyze ctx.Context.dev impl.Impl.route
        impl.Impl.mapped impl.Impl.pack
    in
    Printf.printf "%s: %s\n\n" (Partition.paper_name design)
      (Tmr_pnr.Congestion.summary cong);
    print_endline "channel utilization (decile per tile):";
    print_string (Tmr_pnr.Congestion.heatmap cong);
    print_endline "\ndistinct TMR domains routed per tile (upset-b surface):";
    print_string (Tmr_pnr.Congestion.mix_map cong)
  in
  Cmd.v
    (Cmd.info "congestion"
       ~doc:"routing utilization and domain-mix heatmaps for one design")
    Term.(const run $ telemetry_t $ scale_t $ seed_t $ design_t)

(* --- export --- *)

let export_cmd =
  let out_t =
    Arg.(value & opt (some string) None & info [ "o" ] ~doc:"output file")
  in
  let mapped_t =
    Arg.(value & flag & info [ "mapped" ] ~doc:"export the post-techmap netlist")
  in
  let run telem scale seed design voter mapped out =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed 0 in
    let nl =
      Tmr_filter.Designs.build ~params:ctx.Context.params ~voter design
    in
    let nl =
      if mapped then (Tmr_techmap.Techmap.run nl).Tmr_techmap.Techmap.mapped
      else nl
    in
    match out with
    | None -> print_string (Tmr_netlist.Export.to_string nl)
    | Some path ->
        let oc = open_out path in
        Tmr_netlist.Export.to_channel oc nl;
        close_out oc;
        Printf.eprintf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "export" ~doc:"dump a design netlist in the text interchange format")
    Term.(
      const run $ telemetry_t $ scale_t $ seed_t $ design_t $ voter_t
      $ mapped_t $ out_t)

(* --- tables --- *)

let tables_cmd =
  let tables_json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print one JSON object on stdout instead of the text tables: \
             per design, the same engine-summary schema as $(b,inject \
             --json) extended with slices, MHz, DUT bits by class, the \
             paper's Table 3 row and the injection-coverage record.")
  in
  let voters_t =
    Arg.(
      value
      & opt (list voter_conv) [ Voter.Majority; Voter.Improved; Voter.Detecting ]
      & info [ "voters" ] ~docv:"LIST"
          ~doc:
            "Comma-separated voter variants to campaign for the detection \
             coverage table (default all three).  The first listed voter \
             feeds Tables 2/3/4 and the forensics table, so the default \
             reproduces the paper's majority-voter numbers while \
             re-measuring the partition optimum under every variant.")
  in
  let run telem forensics scale seed faults no_diff batch_width voters json =
    with_telemetry telem @@ fun () ->
    with_forensics forensics @@ fun () ->
    let ctx = mk_ctx scale seed faults in
    let voters = match voters with [] -> [ Voter.Majority ] | vs -> vs in
    let primary = List.hd voters in
    let impls =
      List.map
        (Runs.implement_design ~voter:primary ctx)
        Partition.all_paper_designs
    in
    if not json then begin
      print_string (Tables.table2 impls);
      print_newline ()
    end;
    let progress, flush = ci_progress ~confidence:0.95 () in
    let campaign =
      Runs.campaign_design ~progress ?workers:(jobs ()) ~diff:(not no_diff)
        ~batch_width ~forensics:true ctx
    in
    let runs = List.map campaign impls in
    (* the remaining voter variants, campaigned over the same fault
       sample for the per-voter SDC comparison *)
    let extra =
      List.concat_map
        (fun v ->
          List.filter_map
            (fun strategy ->
              (* a costlier voter can overflow the device on the larger
                 partitionings; the detection table renders those as "-" *)
              match Runs.implement_design ~voter:v ctx strategy with
              | r -> Some (campaign r)
              | exception Failure msg ->
                  Printf.eprintf "tables: skipping %s with %s voter (%s)\n%!"
                    (Partition.name strategy) (Voter.name v) msg;
                  None)
            Partition.all_paper_designs)
        (List.filter (fun v -> v <> primary) voters)
    in
    flush ();
    if json then print_endline (Tables.tables_json ctx (runs @ extra))
    else begin
      print_string (Tables.table3 runs);
      print_newline ();
      print_string (Tables.table4 runs);
      print_newline ();
      print_string (Tables.table_forensics runs);
      print_newline ();
      print_string (Tables.table_voters ());
      print_newline ();
      print_string (Tables.table_detection (runs @ extra))
    end
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:
         "regenerate the paper's Tables 2, 3 and 4 plus fault forensics \
          and the per-voter detection coverage comparison")
    Term.(
      const run $ telemetry_t $ forensics_file_t $ scale_t $ seed_t $ faults_t
      $ no_diff_t $ batch_width_t $ voters_t $ tables_json_t)

(* --- profile --- *)

let profile_cmd =
  let trace_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE.jsonl"
          ~doc:"Chrome-trace JSONL file written by $(b,--trace).")
  in
  let collapsed_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "collapsed" ] ~docv:"FILE"
          ~doc:
            "Also write collapsed stacks ($(i,path;to;span count) per \
             line, counts = self time in µs) to $(docv) for \
             flamegraph.pl / inferno / speedscope.")
  in
  let width_t =
    Arg.(
      value & opt int 60
      & info [ "timeline-width" ] ~docv:"N"
          ~doc:"Buckets in the per-worker utilization timeline.")
  in
  let run path collapsed width =
    match Tmr_obs.Profile.load_file path with
    | Error e ->
        Printf.eprintf "tmrtool profile: %s\n" e;
        exit 1
    | Ok t ->
        print_string (Tmr_obs.Profile.report t);
        ignore width;
        Option.iter
          (fun out ->
            let oc = open_out out in
            output_string oc (Tmr_obs.Profile.collapsed t);
            close_out oc;
            Printf.eprintf "collapsed stacks written to %s\n" out)
          collapsed
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "aggregate a --trace run: per-span self/total time, per-worker \
          utilization, flamegraph export")
    Term.(const run $ trace_arg $ collapsed_t $ width_t)

(* --- watch --- *)

let watch_cmd =
  let source_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOURCE"
          ~doc:
            "Event stream to tail: a JSONL file written by $(b,--events \
             FILE), or $(b,unix:)$(i,PATH) to connect to a live \
             $(b,--events unix:)$(i,PATH) socket.")
  in
  let follow_t =
    Arg.(
      value & flag
      & info [ "follow"; "f" ]
          ~doc:
            "Keep tailing a file as it grows until every campaign seen \
             has stopped (sockets are always followed to EOF).")
  in
  let watch_json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print one JSON array on stdout (a summary object per \
             campaign, same fields and formatting as $(b,inject --json)) \
             instead of the dashboard.")
  in
  let worker_timeout_t =
    Arg.(
      value
      & opt float 10.0
      & info [ "worker-timeout" ] ~docv:"SEC"
          ~doc:
            "On a merged $(b,--procs) fleet stream, flag a worker process \
             $(b,STALE) when its newest event is more than $(docv) seconds \
             older than the newest event on the stream (by event \
             timestamps, so replayed files judge staleness in run time, \
             not wall time).  0 disables the check.")
  in
  let run source follow json confidence worker_timeout =
    let worker_timeout =
      if worker_timeout > 0.0 then Some worker_timeout else None
    in
    let st = Tmr_obs.Watch.create () in
    let bad = ref 0 in
    let feed line =
      if String.trim line <> "" then
        match Tmr_obs.Events.parse_line line with
        | Ok p -> Tmr_obs.Watch.feed st p
        | Error _ -> incr bad
    in
    let tty = (not json) && Unix.isatty Unix.stderr in
    let drawn = ref 0 in
    let last_draw = ref 0.0 in
    (* live TTY dashboard: repaint in place by cursor-up + erase-line,
       rate-limited so a fast stream doesn't melt the terminal *)
    let redraw ~final () =
      if tty then begin
        let now = Unix.gettimeofday () in
        if final || now -. !last_draw >= 0.2 then begin
          last_draw := now;
          let lines =
            String.split_on_char '\n'
              (Tmr_obs.Watch.render ~confidence ?worker_timeout st)
            |> List.filter (fun l -> l <> "")
          in
          if !drawn > 0 then Printf.eprintf "\027[%dA" !drawn;
          List.iter (fun l -> Printf.eprintf "\027[2K%s\n" l) lines;
          drawn := List.length lines;
          flush stderr
        end
      end
    in
    (match String.length source >= 5 && String.sub source 0 5 = "unix:" with
    | true ->
        let path = String.sub source 5 (String.length source - 5) in
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with Unix.Unix_error (e, _, _) ->
           Printf.eprintf "tmrtool watch: cannot connect to %s: %s\n" path
             (Unix.error_message e);
           exit 1);
        let ic = Unix.in_channel_of_descr fd in
        (try
           while true do
             feed (input_line ic);
             redraw ~final:false ()
           done
         with End_of_file -> ());
        close_in ic
    | false ->
        let ic =
          try open_in source
          with Sys_error e ->
            Printf.eprintf "tmrtool watch: %s\n" e;
            exit 1
        in
        let continue = ref true in
        while !continue do
          match input_line ic with
          | line ->
              feed line;
              redraw ~final:false ()
          | exception End_of_file ->
              if follow && not (Tmr_obs.Watch.finished st) then begin
                redraw ~final:false ();
                Unix.sleepf 0.2
              end
              else continue := false
        done;
        close_in ic);
    if !bad > 0 then
      Printf.eprintf "tmrtool watch: skipped %d unparseable lines\n" !bad;
    if Tmr_obs.Watch.events_seen st = 0 then begin
      Printf.eprintf "tmrtool watch: no events in %s\n" source;
      exit 1
    end;
    redraw ~final:true ();
    if json then print_string (Tmr_obs.Watch.summary_json ~confidence st)
    else if not tty then
      print_string (Tmr_obs.Watch.render ~confidence ?worker_timeout st)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "tail a live --events stream (file or unix socket) and render a \
          multi-campaign dashboard")
    Term.(
      const run $ source_t $ follow_t $ watch_json_t $ confidence_t
      $ worker_timeout_t)

(* --- serve / submit --- *)

let host_t =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"bind/connect address")

let serve_cmd =
  let port_t =
    Arg.(
      required
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT" ~doc:"TCP port to listen on")
  in
  let dir_t =
    Arg.(
      value & opt string ".tmr-service"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Queue root: each job runs its shard queue under \
             $(docv)/<job name> (so re-submitting an interrupted job \
             resumes it) and leaves <job name>.summary.json behind.")
  in
  let max_jobs_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-jobs" ] ~docv:"N"
          ~doc:"Exit after $(docv) completed jobs (tests/CI).")
  in
  let serve_procs_t =
    Arg.(
      value & opt int 1
      & info [ "procs" ] ~docv:"P"
          ~doc:"Worker processes forked per job (see $(b,inject --procs)).")
  in
  let run host port dir max_jobs procs =
    Printf.eprintf "tmrtool serve: listening on %s:%d, queue root %s\n%!"
      host port dir;
    Service.serve ~host ?max_jobs ~procs ~port ~dir ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "campaign-as-a-service: accept newline-delimited JSON campaign \
          jobs over TCP, run them through the sharded engine, stream \
          progress events to every connected client")
    Term.(
      const run $ host_t $ port_t $ dir_t $ max_jobs_t $ serve_procs_t)

let submit_cmd =
  let port_t =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"server TCP port")
  in
  let workers_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"W"
          ~doc:"domain workers per process, on the server")
  in
  let run host port scale seed faults design voter exhaustive shards workers
      no_diff batch_width =
    let j =
      Service.job ~scale ~seed ~faults ~exhaustive ?shards ?workers
        ~diff:(not no_diff) ~batch_width ~voter design
    in
    let jname = Service.job_name j in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "tmrtool submit: cannot connect to %s:%d: %s\n" host
         port (Unix.error_message e);
       exit 1);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc (Tmr_obs.Json.to_string (Service.job_to_json j));
    output_char oc '\n';
    flush oc;
    Printf.eprintf "submitted %s to %s:%d\n%!" jname host port;
    (* relay the server's event stream until our job completes; other
       clients' events ride along, which is the point of the service *)
    let done_ = ref false in
    (try
       while not !done_ do
         let line = input_line ic in
         (match Tmr_obs.Json.parse line with
         | Ok js -> (
             match Option.bind (Tmr_obs.Json.member "error" js) Tmr_obs.Json.str with
             | Some e ->
                 Printf.eprintf "tmrtool submit: server rejected the job: %s\n" e;
                 exit 1
             | None -> ())
         | Error _ -> ());
         print_endline line;
         match Tmr_obs.Events.parse_line line with
         | Ok { Tmr_obs.Events.p_event = Tmr_obs.Events.Job_done { job; _ }; _ }
           when job = jname ->
             done_ := true
         | Ok _ | Error _ -> ()
       done
     with End_of_file -> ());
    (try Unix.close fd with _ -> ());
    if not !done_ then begin
      Printf.eprintf
        "tmrtool submit: server closed the stream before %s completed\n"
        jname;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "submit one campaign job to a running $(b,tmrtool serve) and \
          relay its event stream (JSONL on stdout) until the job is done")
    Term.(
      const run $ host_t $ port_t $ scale_t $ seed_t $ faults_t $ design_t
      $ voter_t $ exhaustive_t $ shards_t $ workers_t $ no_diff_t
      $ batch_width_t)

let () =
  let doc = "optimal TMR voter partitioning on an SRAM FPGA (DATE'05 reproduction)" in
  let info = Cmd.info "tmrtool" ~doc ~version:(Store.version_string ()) in
  exit (Cmd.eval (Cmd.group info
       [ report_cmd; implement_cmd; inject_cmd; explain_cmd; congestion_cmd;
         export_cmd; tables_cmd; profile_cmd; watch_cmd; serve_cmd;
         submit_cmd ]))
