(* tmrtool — command-line driver for the TMR voter-partition study.

   Subcommands:
     report     device / configuration-memory composition
     implement  run one filter version through the CAD flow
     inject     fault-injection campaign on one design
     tables     regenerate the paper's Tables 2/3/4 *)

open Cmdliner

module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Tables = Tmr_experiments.Tables
module Reports = Tmr_experiments.Reports
module Partition = Tmr_core.Partition
module Impl = Tmr_pnr.Impl
module Campaign = Tmr_inject.Campaign
module Metrics = Tmr_obs.Metrics
module Trace = Tmr_obs.Trace
module Progress = Tmr_obs.Progress

let scale_conv =
  let parse = function
    | "paper" -> Ok Context.Paper
    | "reduced" -> Ok Context.Reduced
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (paper|reduced)" s))
  in
  let print ppf = function
    | Context.Paper -> Format.pp_print_string ppf "paper"
    | Context.Reduced -> Format.pp_print_string ppf "reduced"
  in
  Arg.conv (parse, print)

let design_conv =
  let parse s =
    match
      List.find_opt
        (fun d -> Partition.name d = s)
        Partition.all_paper_designs
    with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown design %S (%s)" s
               (String.concat "|" (List.map Partition.name Partition.all_paper_designs))))
  in
  let print ppf d = Format.pp_print_string ppf (Partition.name d) in
  Arg.conv (parse, print)

let scale_t =
  Arg.(value & opt scale_conv Context.Paper & info [ "scale" ] ~doc:"paper or reduced")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed")

let faults_t =
  Arg.(value & opt int 1500 & info [ "faults" ] ~doc:"faults per design")

let design_t =
  Arg.(
    value
    & opt design_conv Partition.Medium_partition
    & info [ "design" ] ~doc:"filter version (standard|tmr_p1|tmr_p2|tmr_p3|tmr_p3_nv)")

let no_diff_t =
  Arg.(
    value & flag
    & info [ "no-diff" ]
        ~doc:
          "Disable the differential fault-simulation engine (baseline tape \
           + cone-restricted event-driven evaluation + convergence \
           early-exit); every patch/reroute fault then replays the full \
           DUT.  Results are bit-identical either way.")

let mk_ctx scale seed faults =
  Context.create ~scale ~seed ~faults_per_design:faults ()

(* --- telemetry (global options, every subcommand) --- *)

let trace_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write Chrome-trace-event JSONL spans (CAD phases, campaigns, \
           per-fault injections) to $(docv).  Open with ui.perfetto.dev, or \
           wrap into an array for chrome://tracing.")

let metrics_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON metrics snapshot (counters, gauges, latency \
           histogram percentiles) to $(docv) on exit.")

let telemetry_t =
  Term.(const (fun trace metrics -> (trace, metrics)) $ trace_file_t $ metrics_file_t)

(* Install the trace sink before the work and always flush both files
   after — also when the command raises, so a crashed run still leaves
   its telemetry behind. *)
let with_telemetry (trace, metrics) f =
  Option.iter Trace.to_file trace;
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      Option.iter Metrics.write_file metrics)
    f

(* engine-summary pretty-printing *)

let dur_pp ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fµs" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let engine_summary (c : Campaign.t) =
  let s = c.Campaign.stats in
  Printf.printf "engine: %d workers, wall %s, worker utilization %.0f%%\n"
    c.Campaign.workers
    (dur_pp (float_of_int c.Campaign.wall_ns))
    (100.0 *. Campaign.utilization c);
  let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 c.Campaign.injected) in
  Printf.printf
    "  plan paths: silent %d (%.1f%%), patched %d (%.1f%%), rerouted %d \
     (%.1f%%), rebuilt %d (%.1f%%)\n"
    s.Campaign.skipped (pct s.Campaign.skipped) s.Campaign.patched
    (pct s.Campaign.patched) s.Campaign.rerouted (pct s.Campaign.rerouted)
    s.Campaign.rebuilt (pct s.Campaign.rebuilt);
  let snap = Metrics.snapshot () in
  if s.Campaign.diffed > 0 then begin
    let conv_pct =
      100.0
      *. float_of_int s.Campaign.converged
      /. float_of_int (max 1 s.Campaign.diffed)
    in
    match
      List.assoc_opt "campaign.diff_converge_cycle" snap.Metrics.histograms
    with
    | Some h when h.Metrics.count > 0 ->
        Printf.printf
          "  diff engine: %d differential, %d converged early (%.1f%%), \
           median convergence cycle %.0f\n"
          s.Campaign.diffed s.Campaign.converged conv_pct h.Metrics.p50
    | _ ->
        Printf.printf
          "  diff engine: %d differential, %d converged early (%.1f%%)\n"
          s.Campaign.diffed s.Campaign.converged conv_pct
  end;
  Printf.printf "  %-18s %8s %9s %9s %9s\n" "fault latency" "count" "p50"
    "p95" "p99";
  List.iter
    (fun path ->
      match
        List.assoc_opt ("campaign.fault_ns." ^ path) snap.Metrics.histograms
      with
      | Some h when h.Metrics.count > 0 ->
          Printf.printf "  %-18s %8d %9s %9s %9s\n" ("  " ^ path)
            h.Metrics.count (dur_pp h.Metrics.p50) (dur_pp h.Metrics.p95)
            (dur_pp h.Metrics.p99)
      | _ -> ())
    [ "silent"; "patch"; "reroute"; "rebuild"; "diff" ]

(* Campaign worker-domain count; default picked by Campaign. *)
let jobs () =
  match Sys.getenv_opt "TMR_JOBS" with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Some n
      | None ->
          Printf.eprintf "tmrtool: TMR_JOBS must be an integer, got %S\n" v;
          exit 2)

(* --- report --- *)

let report_cmd =
  let what =
    Arg.(
      value & pos 0 string "device"
      & info [] ~docv:"WHAT" ~doc:"device or memory")
  in
  let run telem scale seed what =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed 0 in
    match what with
    | "device" -> print_string (Reports.device_report ctx)
    | "memory" -> print_string (Reports.memory_report ctx)
    | other ->
        Printf.eprintf "unknown report %S (device|memory)\n" other;
        exit 2
  in
  Cmd.v (Cmd.info "report" ~doc:"device / memory composition reports")
    Term.(const run $ telemetry_t $ scale_t $ seed_t $ what)

(* --- implement --- *)

let implement_cmd =
  let run telem scale seed design =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed 0 in
    let r = Runs.implement_design ctx design in
    let impl = r.Runs.impl in
    Printf.printf "%s (%s)\n" (Partition.paper_name design)
      (Tmr_filter.Designs.description design);
    Printf.printf "  slices        %d\n" (Impl.used_slices impl);
    Printf.printf "  LUTs          %d\n" (Impl.used_luts impl);
    Printf.printf "  flip-flops    %d\n" (Impl.used_ffs impl);
    Printf.printf "  route iters   %d\n"
      impl.Impl.route.Tmr_pnr.Route.iterations;
    Printf.printf "  est. clock    %.1f MHz (critical %.1f ns, %d LUT levels)\n"
      impl.Impl.timing.Tmr_pnr.Timing.mhz
      impl.Impl.timing.Tmr_pnr.Timing.critical_ns
      impl.Impl.timing.Tmr_pnr.Timing.logic_levels;
    List.iter
      (fun (cls, n) ->
        Printf.printf "  DUT %-13s %d bits\n" (Tmr_arch.Bitdb.class_name cls) n)
      r.Runs.faultlist.Tmr_inject.Faultlist.by_class
  in
  Cmd.v
    (Cmd.info "implement" ~doc:"map, place and route one filter version")
    Term.(const run $ telemetry_t $ scale_t $ seed_t $ design_t)

(* --- inject --- *)

let inject_cmd =
  let run telem scale seed faults design no_diff =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed faults in
    let r = Runs.implement_design ctx design in
    let progress = Progress.callback () in
    let r =
      Runs.campaign_design ~progress ?workers:(jobs ()) ~diff:(not no_diff)
        ctx r
    in
    match r.Runs.campaign with
    | None -> assert false
    | Some c ->
        Printf.printf "%s: injected %d, wrong answers %d (%.2f%%)\n"
          (Partition.paper_name design) c.Campaign.injected c.Campaign.wrong
          (Campaign.wrong_percent c);
        List.iter
          (fun eff ->
            let n =
              Array.fold_left
                (fun acc fr ->
                  if
                    fr.Campaign.outcome = Campaign.Wrong_answer
                    && fr.Campaign.effect = eff
                  then acc + 1
                  else acc)
                0 c.Campaign.results
            in
            if n > 0 then
              Printf.printf "  %-14s %d\n" (Tmr_inject.Classify.name eff) n)
          Tmr_inject.Classify.all;
        engine_summary c
  in
  Cmd.v
    (Cmd.info "inject" ~doc:"fault-injection campaign on one design")
    Term.(
      const run $ telemetry_t $ scale_t $ seed_t $ faults_t $ design_t
      $ no_diff_t)

(* --- congestion --- *)

let congestion_cmd =
  let run telem scale seed design =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed 0 in
    let r = Runs.implement_design ctx design in
    let impl = r.Runs.impl in
    let cong =
      Tmr_pnr.Congestion.analyze ctx.Context.dev impl.Impl.route
        impl.Impl.mapped impl.Impl.pack
    in
    Printf.printf "%s: %s\n\n" (Partition.paper_name design)
      (Tmr_pnr.Congestion.summary cong);
    print_endline "channel utilization (decile per tile):";
    print_string (Tmr_pnr.Congestion.heatmap cong);
    print_endline "\ndistinct TMR domains routed per tile (upset-b surface):";
    print_string (Tmr_pnr.Congestion.mix_map cong)
  in
  Cmd.v
    (Cmd.info "congestion"
       ~doc:"routing utilization and domain-mix heatmaps for one design")
    Term.(const run $ telemetry_t $ scale_t $ seed_t $ design_t)

(* --- export --- *)

let export_cmd =
  let out_t =
    Arg.(value & opt (some string) None & info [ "o" ] ~doc:"output file")
  in
  let mapped_t =
    Arg.(value & flag & info [ "mapped" ] ~doc:"export the post-techmap netlist")
  in
  let run telem scale seed design mapped out =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed 0 in
    let nl = Tmr_filter.Designs.build ~params:ctx.Context.params design in
    let nl =
      if mapped then (Tmr_techmap.Techmap.run nl).Tmr_techmap.Techmap.mapped
      else nl
    in
    match out with
    | None -> print_string (Tmr_netlist.Export.to_string nl)
    | Some path ->
        let oc = open_out path in
        Tmr_netlist.Export.to_channel oc nl;
        close_out oc;
        Printf.eprintf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "export" ~doc:"dump a design netlist in the text interchange format")
    Term.(const run $ telemetry_t $ scale_t $ seed_t $ design_t $ mapped_t $ out_t)

(* --- tables --- *)

let tables_cmd =
  let run telem scale seed faults no_diff =
    with_telemetry telem @@ fun () ->
    let ctx = mk_ctx scale seed faults in
    let impls =
      List.map (Runs.implement_design ctx) Partition.all_paper_designs
    in
    print_string (Tables.table2 impls);
    print_newline ();
    let progress = Progress.callback () in
    let runs =
      List.map
        (Runs.campaign_design ~progress ?workers:(jobs ())
           ~diff:(not no_diff) ctx)
        impls
    in
    print_string (Tables.table3 runs);
    print_newline ();
    print_string (Tables.table4 runs)
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"regenerate the paper's Tables 2, 3 and 4")
    Term.(const run $ telemetry_t $ scale_t $ seed_t $ faults_t $ no_diff_t)

let () =
  let doc = "optimal TMR voter partitioning on an SRAM FPGA (DATE'05 reproduction)" in
  let info = Cmd.info "tmrtool" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ report_cmd; implement_cmd; inject_cmd; congestion_cmd; export_cmd;
         tables_cmd ]))
